// Tests of the shard-per-core serve scale-out: deterministic query routing,
// per-shard feedback journal files, cross-shard hot-swap safety under
// concurrent serving (the TSan gate certifies this suite), rollback while
// sharded, per-shard overload shedding, and the house rule — for a fixed
// shard count, model-path decisions are bit-identical at any submitter
// thread count.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "warehouse/flighting.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LOAM_TEST_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define LOAM_TEST_TSAN 1
#endif

namespace loam::serve {
namespace {

namespace fs = std::filesystem;

// The 1ms applied-swap budget is a claim about real hardware (enforced in
// Release by bench_micro --serve-scaling). Under TSan's slowdown a preempted
// swapper can hold the announcement slot across a scheduling quantum, so the
// shard's measured pause includes the wait — keep only a sanity bound there.
#ifdef LOAM_TEST_TSAN
constexpr std::int64_t kSwapPauseBudgetNs = 100'000'000;
#else
constexpr std::int64_t kSwapPauseBudgetNs = 1'000'000;
#endif

struct ShardFixture {
  std::unique_ptr<core::ProjectRuntime> runtime;
  std::string root;

  explicit ShardFixture(const std::string& tag) {
    warehouse::ProjectArchetype a;
    a.name = "shard";
    a.seed = 5;
    a.n_tables = 14;
    a.n_templates = 8;
    a.queries_per_day = 50.0;
    a.stats_coverage = 0.15;
    a.cluster_machines = 24;
    core::RuntimeConfig rc;
    rc.seed = 31;
    runtime = std::make_unique<core::ProjectRuntime>(a, rc);
    runtime->simulate_history(5, 50);
    root = (fs::temp_directory_path() /
            ("loam_shard_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(root);
    fs::create_directories(root);
  }
  ~ShardFixture() { fs::remove_all(root); }

  ServeConfig config(int num_shards) const {
    ServeConfig cfg;
    cfg.num_shards = num_shards;
    cfg.predictor.epochs = 4;
    cfg.predictor.hidden_dim = 16;
    cfg.predictor.embed_dim = 16;
    cfg.predictor.tcn_layers = 2;
    cfg.gate.sample_queries = 6;
    cfg.gate.replay_runs = 2;
    cfg.min_train_examples = 20;
    cfg.bootstrap_candidate_queries = 10;
    cfg.batch_linger_us = 100;
    cfg.registry_root = root + "/registry";
    cfg.journal_path = root + "/feedback.jnl";
    return cfg;
  }

  warehouse::ExecutionResult execute(const warehouse::Plan& plan,
                                     std::uint64_t seed) const {
    warehouse::FlightingEnv env(runtime->config().cluster,
                                runtime->config().executor, seed);
    return env.replay_once(plan);
  }
};

std::unique_ptr<core::AdaptiveCostPredictor> untrained_model(
    const OptimizerService& service) {
  return std::make_unique<core::AdaptiveCostPredictor>(
      service.encoder().feature_dim(), service.config().predictor);
}

ModelVersionMeta approved_meta() {
  ModelVersionMeta meta;
  meta.approved = true;
  return meta;
}

TEST(ShardedService, RoutingIsDeterministicAndCoversShards) {
  ShardFixture fx("routing");
  ServeConfig cfg = fx.config(4);
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  OptimizerService service(fx.runtime.get(), cfg);
  ASSERT_EQ(service.num_shards(), 4);

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 8, 64);
  ASSERT_GE(queries.size(), 32u);
  std::set<std::size_t> seen;
  for (const warehouse::Query& q : queries) {
    const std::size_t s = service.shard_of(q);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(service.shard_of(q), s);  // stable
    seen.insert(s);
  }
  // A salted-hash router over 8 templates x many bindings must not leave a
  // shard cold across 64 queries.
  EXPECT_EQ(seen.size(), 4u);

  // Serving tags each decision with the shard that handled it.
  service.start();
  for (std::size_t i = 0; i < 8; ++i) {
    const ServeDecision d = service.optimize(queries[i]);
    EXPECT_EQ(d.shard, static_cast<int>(service.shard_of(queries[i])));
  }
  service.stop();
}

TEST(ShardedService, CrossShardHotSwapMidBurstExactlyOneVersion) {
  ShardFixture fx("swapburst");
  ServeConfig cfg = fx.config(4);
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  cfg.max_batch = 4;
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();

  ModelVersionMeta m1;  // v1 stays promotable for the swap loop
  m1.approved = true;
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), m1), 1);
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), approved_meta()),
            2);

  // Pre-generate all queries on the main thread: make_queries mutates the
  // runtime's RNG and must not race the submitters.
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 7, 48);
  ASSERT_GE(queries.size(), 16u);

  // Swaps land mid-burst while four submitters spray requests across every
  // shard; each shard applies the epoch broadcast at its own batch boundary.
  std::atomic<bool> swapping{true};
  std::vector<ServeDecision> decisions(queries.size());
  auto submitter = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      decisions[i] = service.optimize(queries[i]);
    }
  };
  std::thread swapper([&] {
    int k = 0;
    while (swapping.load(std::memory_order_relaxed)) {
      service.swap_to_version(1 + (k++ & 1));
      std::this_thread::yield();
    }
  });
  {
    const std::size_t quarter = queries.size() / 4;
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      const std::size_t begin = static_cast<std::size_t>(t) * quarter;
      const std::size_t end =
          t == 3 ? queries.size() : begin + quarter;
      submitters.emplace_back(submitter, begin, end);
    }
    for (std::thread& t : submitters) t.join();
  }
  swapping.store(false, std::memory_order_relaxed);
  swapper.join();

  std::set<int> shards_used;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const ServeDecision& d = decisions[i];
    // Exactly one registry version served each request — never the fallback
    // (both announced versions have models) and never a torn mix.
    EXPECT_TRUE(d.model_version == 1 || d.model_version == 2) << d.model_version;
    EXPECT_EQ(d.predicted.size(), d.generation.plans.size());
    EXPECT_EQ(d.shard, static_cast<int>(service.shard_of(queries[i])));
    shards_used.insert(d.shard);
  }
  EXPECT_GT(shards_used.size(), 1u);  // the burst really was cross-shard

  // Every shard that served a batch after the first broadcast picked the
  // swap up; per-shard pause stays far under the 1ms budget.
  std::uint64_t swaps_applied = 0;
  for (int k = 0; k < service.num_shards(); ++k) {
    const ShardStats ss = service.shard_stats(k);
    swaps_applied += ss.swaps_applied;
    EXPECT_LT(ss.swap_pause_max_ns, kSwapPauseBudgetNs) << "shard " << k;
  }
  EXPECT_GE(swaps_applied, 1u);
  EXPECT_GE(service.stats().swaps, 2u);
  service.stop();
}

TEST(ShardedService, RollbackWhileShardedStepsDownChain) {
  ShardFixture fx("shardroll");
  ServeConfig cfg = fx.config(4);
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  cfg.monitor.window = 8;
  cfg.monitor.min_samples = 3;
  cfg.monitor.max_mean_overrun = 0.5;
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();

  // Two approved versions of an UNTRAINED predictor (costs predicted near 1,
  // realized orders of magnitude higher): the monitor trips deterministically
  // whichever shard served the feedback.
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), approved_meta()),
            1);
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), approved_meta()),
            2);
  ASSERT_EQ(service.active_version(), 2);

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 8, 60);
  ASSERT_GE(queries.size(), 10u);
  std::size_t i = 0;
  std::set<int> fed_shards;
  // Phase 1: regress v2 -> automatic step-down to the previous approved v1.
  // The rollback broadcast must reach every shard: keep serving until each
  // shard's OWN slot has stepped down.
  while (i < queries.size()) {
    const ServeDecision d = service.optimize(queries[i]);
    if (d.model_version >= 0) {
      service.record_feedback(d, fx.execute(d.generation.plans[d.chosen], 7 + i));
      fed_shards.insert(d.shard);
    }
    ++i;
    if (service.active_version() == 1) break;
  }
  ASSERT_EQ(service.active_version(), 1);
  EXPECT_EQ(service.stats().rollbacks, 1u);
  EXPECT_TRUE(service.registry().find(2)->rolled_back);

  // Phase 2: v1 is as bad -> final fallback to the native optimizer.
  while (service.active_version() == 1 && i < queries.size()) {
    const ServeDecision d = service.optimize(queries[i]);
    if (d.model_version >= 0) {
      service.record_feedback(d, fx.execute(d.generation.plans[d.chosen], 7 + i));
    }
    ++i;
  }
  ASSERT_EQ(service.active_version(), -1);
  EXPECT_EQ(service.stats().rollbacks, 2u);
  EXPECT_TRUE(service.registry().find(1)->rolled_back);
  EXPECT_FALSE(service.registry().latest_approved().has_value());

  // The fallback broadcast reaches every shard that serves again: route one
  // query to each shard and confirm its applied slot stepped all the way
  // down.
  std::map<std::size_t, warehouse::Query> one_per_shard;
  for (; i < queries.size() && one_per_shard.size() < 4u; ++i) {
    one_per_shard.emplace(service.shard_of(queries[i]), queries[i]);
  }
  for (const auto& [shard, query] : one_per_shard) {
    const ServeDecision d = service.optimize(query);
    EXPECT_EQ(d.model_version, -1);
    EXPECT_EQ(d.chosen, d.generation.default_index);
    EXPECT_EQ(service.shard(static_cast<int>(shard)).serving_version(), -1);
  }
  service.stop();
}

// House rule, sharded: for a FIXED shard count, model-path decisions are
// bit-identical at any submitter thread count. Runs under TSan in the
// sanitizer ctest passes.
TEST(ShardedService, FixedShardCountDecisionsBitIdenticalAtAnyThreadCount) {
  ShardFixture fx("sharddet");
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 7, 32);
  ASSERT_GE(queries.size(), 16u);

  auto run = [&](int submitter_threads) {
    ServeConfig cfg = fx.config(4);
    cfg.bootstrap_from_history = false;
    cfg.bootstrap_train = false;
    cfg.auto_retrain = false;
    cfg.registry_root = fx.root + "/registry_t" +
                        std::to_string(submitter_threads);
    cfg.journal_path = fx.root + "/feedback_t" +
                       std::to_string(submitter_threads) + ".jnl";
    OptimizerService service(fx.runtime.get(), cfg);
    service.start();
    // One deterministic version: publish_and_swap assigns v1 from a fresh
    // registry, and the untrained predictor's weights are a pure function of
    // (feature_dim, predictor config).
    EXPECT_EQ(service.publish_and_swap(untrained_model(service),
                                       approved_meta()),
              1);
    std::vector<ServeDecision> decisions(queries.size());
    std::vector<std::thread> threads;
    const std::size_t n = queries.size();
    for (int t = 0; t < submitter_threads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = static_cast<std::size_t>(t); i < n;
             i += static_cast<std::size_t>(submitter_threads)) {
          decisions[i] = service.optimize(queries[i]);
        }
      });
    }
    for (std::thread& th : threads) th.join();
    service.stop();
    return decisions;
  };

  const std::vector<ServeDecision> serial = run(1);
  for (const int threads : {2, 4}) {
    const std::vector<ServeDecision> parallel = run(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i].model_version, serial[i].model_version) << i;
      EXPECT_EQ(parallel[i].shard, serial[i].shard) << i;
      EXPECT_EQ(parallel[i].chosen, serial[i].chosen) << i;
      ASSERT_EQ(parallel[i].predicted.size(), serial[i].predicted.size()) << i;
      for (std::size_t c = 0; c < serial[i].predicted.size(); ++c) {
        // Bit-identical, not approximately equal: batch composition, cache
        // hits, and submitter interleaving must never perturb a score.
        EXPECT_EQ(parallel[i].predicted[c], serial[i].predicted[c])
            << i << ":" << c;
      }
    }
  }
}

TEST(ShardedService, FeedbackLandsInServingShardsJournalFile) {
  ShardFixture fx("shardjnl");
  ServeConfig cfg = fx.config(4);
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), approved_meta()),
            1);

  // Every shard file exists from construction, under the journal.s<K> naming.
  for (int k = 0; k < 4; ++k) {
    const std::string path =
        ShardedFeedbackJournal::shard_path(cfg.journal_path, 4, k);
    EXPECT_EQ(path, cfg.journal_path + ".s" + std::to_string(k));
    EXPECT_TRUE(fs::exists(path)) << path;
    EXPECT_EQ(service.journal().shard(k).records(), 0u);
  }

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 8, 24);
  std::map<int, std::uint64_t> executed_per_shard;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const ServeDecision d = service.optimize(queries[i]);
    ASSERT_EQ(d.model_version, 1);
    service.record_feedback(d, fx.execute(d.generation.plans[d.chosen], 11 + i));
    ++executed_per_shard[d.shard];
  }
  std::uint64_t total_executed = 0;
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(service.journal().shard(k).executed_records(),
              executed_per_shard[k])
        << "shard " << k;
    total_executed += service.journal().shard(k).executed_records();
  }
  EXPECT_EQ(total_executed, queries.size());
  EXPECT_EQ(service.journal().executed_records(), total_executed);
  service.stop();
}

TEST(ShardedService, PacedOverloadShedsPerShardNeverRejects) {
  ShardFixture fx("shardshed");
  ServeConfig cfg = fx.config(4);
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  cfg.max_batch = 4;
  cfg.queue_capacity = 8;  // small: overflow converts to shed, not reject
  cfg.pacing.enabled = true;
  cfg.pacing.min_inflight = 2.0;
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), approved_meta()),
            1);

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 8, 64);
  const int kRepeat = 6;
  std::vector<std::thread> submitters;
  std::atomic<std::uint64_t> resolved{0};
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int r = 0; r < kRepeat; ++r) {
        for (std::size_t i = static_cast<std::size_t>(t); i < queries.size();
             i += 4) {
          std::future<ServeDecision> f;
          ASSERT_TRUE(service.try_submit(queries[i], &f));
          const ServeDecision d = f.get();
          EXPECT_TRUE(d.shed ? d.model_version == -1 : true);
          resolved.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : submitters) th.join();

  const OptimizerService::Stats stats = service.stats();
  EXPECT_EQ(resolved.load(), queries.size() * kRepeat);
  EXPECT_EQ(stats.requests, queries.size() * kRepeat);
  EXPECT_EQ(stats.rejected, 0u);  // paced overload never rejects
  // Per-shard stats sum to the service view.
  std::uint64_t shard_requests = 0, shard_shed = 0;
  for (int k = 0; k < 4; ++k) {
    shard_requests += service.shard_stats(k).requests;
    shard_shed += service.shard_stats(k).shed;
  }
  EXPECT_EQ(shard_requests, stats.requests);
  EXPECT_EQ(shard_shed, stats.shed);
  service.stop();
}

}  // namespace
}  // namespace loam::serve
