// Tests of the stage decomposition, cluster load simulator, Fuxi-style
// scheduler and execution cost model — the Challenge-1 substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"
#include "warehouse/cluster.h"
#include "warehouse/executor.h"
#include "warehouse/fuxi.h"
#include "warehouse/native_optimizer.h"
#include "warehouse/stages.h"
#include "warehouse/workload.h"

namespace loam::warehouse {
namespace {

// A small project used as a realistic plan source.
struct Env {
  WorkloadGenerator gen{77};
  Project project;
  Env() {
    ProjectArchetype a;
    a.name = "exec_test";
    a.n_tables = 12;
    a.n_templates = 8;
    a.seed = 5;
    project = gen.make_project(a);
  }
  Query query(int i = 0) {
    Rng rng(100 + static_cast<std::uint64_t>(i));
    return gen.instantiate(project, project.templates[static_cast<std::size_t>(
                                        i % project.templates.size())],
                           0, rng);
  }
};

TEST(Stages, ExchangeBoundariesSplitStages) {
  Env env;
  NativeOptimizer opt(env.project.catalog);
  for (int i = 0; i < 6; ++i) {
    Query q = env.query(i);
    Plan plan = opt.optimize(q);
    StageGraph graph = decompose_into_stages(plan);
    // An exchange node and its child always belong to different stages.
    for (const PlanNode& n : plan.nodes()) {
      if (is_exchange(n.op) && n.left >= 0) {
        EXPECT_NE(n.stage, plan.node(n.left).stage);
      } else if (n.left >= 0) {
        EXPECT_EQ(n.stage, plan.node(n.left).stage);
      }
      if (!is_exchange(n.op) && n.right >= 0) {
        EXPECT_EQ(n.stage, plan.node(n.right).stage);
      }
      EXPECT_GE(n.stage, 0);
      EXPECT_LT(n.stage, graph.stage_count());
    }
  }
}

TEST(Stages, TopologicalOrderRespectsDependencies) {
  Env env;
  NativeOptimizer opt(env.project.catalog);
  Query q = env.query(1);
  Plan plan = opt.optimize(q);
  StageGraph graph = decompose_into_stages(plan);
  const std::vector<int> order = graph.topological_order();
  EXPECT_EQ(order.size(), static_cast<std::size_t>(graph.stage_count()));
  std::vector<int> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (const Stage& s : graph.stages) {
    for (int u : s.upstream) {
      EXPECT_LT(position[static_cast<std::size_t>(u)],
                position[static_cast<std::size_t>(s.id)]);
    }
  }
}

TEST(Stages, ParallelismScalesWithInputRows) {
  Env env;
  NativeOptimizer opt(env.project.catalog);
  Query q = env.query(2);
  Plan plan = opt.optimize(q);
  StageDecomposerConfig cfg;
  cfg.rows_per_instance = 1e3;
  StageGraph fine = decompose_into_stages(plan, cfg);
  cfg.rows_per_instance = 1e9;
  StageGraph coarse = decompose_into_stages(plan, cfg);
  int fine_total = 0, coarse_total = 0;
  for (const Stage& s : fine.stages) fine_total += s.parallelism;
  for (const Stage& s : coarse.stages) coarse_total += s.parallelism;
  EXPECT_GE(fine_total, coarse_total);
  for (const Stage& s : coarse.stages) EXPECT_EQ(s.parallelism, 1);
}

TEST(Cluster, MetricsWithinDomains) {
  Cluster cluster(ClusterConfig{}, 3);
  cluster.advance(3600.0);
  for (int m = 0; m < cluster.size(); ++m) {
    const MachineLoad l = cluster.machine_load(m);
    EXPECT_GE(l.cpu_idle, 0.0);
    EXPECT_LE(l.cpu_idle, 1.0);
    EXPECT_GE(l.io_wait, 0.0);
    EXPECT_LE(l.io_wait, 1.0);
    EXPECT_GE(l.load5, 0.0);
    EXPECT_GE(l.mem_usage, 0.0);
    EXPECT_LE(l.mem_usage, 1.0);
  }
}

TEST(Cluster, LoadEvolvesOverTime) {
  Cluster cluster(ClusterConfig{}, 4);
  const MachineLoad before = cluster.machine_load(0);
  cluster.advance(7200.0);
  const MachineLoad after = cluster.machine_load(0);
  EXPECT_NE(before.cpu_idle, after.cpu_idle);
}

TEST(Cluster, StationaryBusynessNearConfiguredMean) {
  ClusterConfig cfg;
  cfg.machines = 64;
  cfg.mean_busy = 0.45;
  Cluster cluster(cfg, 5);
  // Average across machines AND across a full diurnal cycle (the sinusoidal
  // component alone swings busyness by +-diurnal_amplitude).
  std::vector<double> busy;
  for (int step = 0; step < 48; ++step) {
    cluster.advance(1800.0);
    for (int m = 0; m < cluster.size(); ++m) busy.push_back(cluster.busyness(m));
  }
  EXPECT_NEAR(mean(busy), cfg.mean_busy, 0.12);
}

TEST(Cluster, EnvFeaturesNormalized) {
  MachineLoad l;
  l.cpu_idle = 0.4;
  l.io_wait = 0.1;
  l.load5 = 64.0;
  l.mem_usage = 0.7;
  const EnvFeatures f = EnvFeatures::from_load(l);
  EXPECT_DOUBLE_EQ(f.cpu_idle, 0.4);
  EXPECT_NEAR(f.load5_norm, 1.0, 1e-9);
  l.load5 = 0.0;
  EXPECT_DOUBLE_EQ(EnvFeatures::from_load(l).load5_norm, 0.0);
}

TEST(Fuxi, PrefersIdleMachines) {
  ClusterConfig cfg;
  cfg.machines = 50;
  Cluster cluster(cfg, 6);
  cluster.advance(3600.0);
  FuxiScheduler scheduler;
  Rng rng(9);
  // Allocate many instances; the mean busyness of chosen machines must be
  // below the cluster mean.
  double chosen_busy = 0.0;
  int count = 0;
  for (int trial = 0; trial < 50; ++trial) {
    for (int m : scheduler.allocate(cluster, 8, rng)) {
      chosen_busy += cluster.busyness(m);
      ++count;
    }
  }
  chosen_busy /= count;
  double cluster_busy = 0.0;
  for (int m = 0; m < cluster.size(); ++m) cluster_busy += cluster.busyness(m);
  cluster_busy /= cluster.size();
  EXPECT_LT(chosen_busy, cluster_busy - 0.05);
}

TEST(ExecutorTest, EnvMultiplierMonotoneInLoad) {
  ExecutorConfig cfg;
  EnvFeatures idle;
  idle.cpu_idle = 0.95;
  idle.io_wait = 0.01;
  idle.load5_norm = 0.05;
  idle.mem_usage = 0.3;
  EnvFeatures busy;
  busy.cpu_idle = 0.1;
  busy.io_wait = 0.3;
  busy.load5_norm = 0.8;
  busy.mem_usage = 0.9;
  EXPECT_GT(env_multiplier(busy, cfg), env_multiplier(idle, cfg));
  EXPECT_GT(env_multiplier(idle, cfg), 0.5);
}

TEST(ExecutorTest, CostScalesWithWork) {
  Env env;
  NativeOptimizer opt(env.project.catalog);
  Query q = env.query(3);
  Plan plan = opt.optimize(q);
  const double work = plan_work(plan);
  EXPECT_GT(work, 0.0);

  ClusterConfig ccfg;
  ccfg.machines = 16;
  Cluster cluster(ccfg, 7);
  Executor executor(&cluster);
  Rng rng(11);
  Plan copy = plan;
  const ExecutionResult r = executor.execute(copy, rng);
  EXPECT_GT(r.cpu_cost, 0.0);
  EXPECT_GT(r.latency_s, 0.0);
  // Cost = work x env multiplier x noise, so it must lie within a broad
  // multiplicative band of the noiseless work.
  EXPECT_GT(r.cpu_cost, 0.5 * work);
  EXPECT_LT(r.cpu_cost, 5.0 * work);
}

TEST(ExecutorTest, StagesCarryEnvironmentRecords) {
  Env env;
  NativeOptimizer opt(env.project.catalog);
  Query q = env.query(4);
  Plan plan = opt.optimize(q);
  ClusterConfig ccfg;
  ccfg.machines = 16;
  Cluster cluster(ccfg, 8);
  Executor executor(&cluster);
  Rng rng(12);
  const ExecutionResult r = executor.execute(plan, rng);
  ASSERT_FALSE(r.stages.empty());
  for (const StageExecution& s : r.stages) {
    EXPECT_GE(s.stage_id, 0);
    EXPECT_GE(s.instances, 1);
    EXPECT_GE(s.env.cpu_idle, 0.0);
    EXPECT_LE(s.env.cpu_idle, 1.0);
    EXPECT_GE(s.cpu_cost, 0.0);
  }
  // Stage ids were written into the plan.
  for (const PlanNode& n : plan.nodes()) EXPECT_GE(n.stage, 0);
}

TEST(ExecutorTest, RepeatedRunsExhibitEnvironmentVariance) {
  // The Fig. 1 phenomenon: identical recurring plans fluctuate in cost.
  Env env;
  NativeOptimizer opt(env.project.catalog);
  Query q = env.query(5);
  Plan plan = opt.optimize(q);
  ClusterConfig ccfg;
  ccfg.machines = 32;
  Cluster cluster(ccfg, 9);
  Executor executor(&cluster);
  Rng rng(13);
  std::vector<double> costs;
  for (int i = 0; i < 60; ++i) {
    cluster.advance(600.0);
    Plan copy = plan;
    costs.push_back(executor.execute(copy, rng).cpu_cost);
  }
  const double rsd = relative_stddev(costs);
  EXPECT_GT(rsd, 0.03);  // non-trivial variance
  EXPECT_LT(rsd, 0.8);   // but not absurd
}

TEST(ExecutorTest, BusyClusterCostsMoreOnAverage) {
  Env env;
  NativeOptimizer opt(env.project.catalog);
  Query q = env.query(0);
  Plan plan = opt.optimize(q);

  auto mean_cost = [&](double busy_level, std::uint64_t seed) {
    ClusterConfig ccfg;
    ccfg.machines = 32;
    ccfg.mean_busy = busy_level;
    Cluster cluster(ccfg, seed);
    cluster.advance(3600.0);
    Executor executor(&cluster);
    Rng rng(seed);
    double acc = 0.0;
    for (int i = 0; i < 30; ++i) {
      cluster.advance(300.0);
      Plan copy = plan;
      acc += executor.execute(copy, rng).cpu_cost;
    }
    return acc / 30.0;
  };
  EXPECT_GT(mean_cost(0.85, 21), mean_cost(0.1, 22));
}

TEST(ExecutorTest, OperatorWorkRelationships) {
  // Broadcast exchanges must cost more than plain exchanges at equal volume;
  // nested-loop joins must dwarf hash joins.
  Plan plan;
  PlanNode scan;
  scan.op = OpType::kTableScan;
  scan.true_rows = 1e6;
  const int s = plan.add_node(scan);
  PlanNode ex;
  ex.op = OpType::kExchange;
  ex.left = s;
  ex.true_rows = 1e6;
  PlanNode bex;
  bex.op = OpType::kBroadcastExchange;
  bex.left = s;
  bex.true_rows = 1e6;
  EXPECT_GT(operator_work(plan, bex, /*consumer_parallelism=*/64),
            operator_work(plan, ex, 64));

  PlanNode scan2 = scan;
  const int s2 = plan.add_node(scan2);
  PlanNode hj;
  hj.op = OpType::kHashJoin;
  hj.left = s;
  hj.right = s2;
  hj.true_rows = 1e6;
  PlanNode nlj = hj;
  nlj.op = OpType::kNestedLoopJoin;
  EXPECT_GT(operator_work(plan, nlj, 1), 10.0 * operator_work(plan, hj, 1));
}

}  // namespace
}  // namespace loam::warehouse
