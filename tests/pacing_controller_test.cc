// State-machine tests for the BBR-style PacingController: unit checks of the
// admission window and STARTUP growth, a property test that drives seeded
// random load traces (Rng::fork) through a synthetic service model and
// asserts the machine's invariants after every round, and a golden-trace
// regression for one fixed configuration (values pinned from a reference run;
// the sim keeps queue arithmetic integral so the trace is stable across
// optimization levels).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/pacing.h"
#include "util/rng.h"

namespace loam::serve {
namespace {

using State = PacingController::State;

PacingConfig test_config() {
  PacingConfig cfg;
  cfg.enabled = true;
  cfg.bw_window_ticks = 2000;
  cfg.delay_window_ticks = 8000;
  cfg.min_round_ticks = 10;
  cfg.probe_interval_ticks = 1000;
  cfg.ticks_per_second = 1e6;
  return cfg;
}

// One round of the synthetic service: the batch target is always fillable
// (overload), service time is a fixed per-batch overhead plus plans/capacity,
// and queued arrivals stretch the observed delay proportionally. Returns the
// inflight value fed to the controller.
struct Sim {
  double capacity;        // plans per tick
  int ppr;                // plans per request
  std::int64_t overhead;  // fixed per-batch service overhead, ticks
  std::int64_t now = 0;

  double step(PacingController& pc, double offered) {
    const int requests = pc.batch_target();
    const int plans = requests * ppr;
    const std::int64_t service =
        overhead + static_cast<std::int64_t>(
                       std::ceil(static_cast<double>(plans) / capacity));
    const double inflight = std::min(offered, pc.cwnd());
    const std::int64_t infl_i = static_cast<std::int64_t>(inflight);
    const std::int64_t queue_extra =
        infl_i > requests ? (infl_i - requests) * service / requests : 0;
    now += service;
    pc.on_batch_complete(now, requests, plans, service, service + queue_extra,
                         inflight);
    return inflight;
  }
};

TEST(PacingController, InitialStateAndAdmissionBoundary) {
  PacingController pc(test_config(), 4);
  EXPECT_EQ(pc.state(), State::kStartup);
  EXPECT_EQ(pc.batch_target(), 4);
  EXPECT_EQ(pc.rounds(), 0);
  EXPECT_FALSE(pc.full_bw_reached());
  // Cold-start window: startup_gain * batch (= 8), floored at min_inflight.
  EXPECT_EQ(pc.cwnd(), 8.0);
  EXPECT_TRUE(pc.admit(0.0));
  EXPECT_TRUE(pc.admit(7.9));
  EXPECT_FALSE(pc.admit(8.0));  // admission is strict: inflight < cwnd
  EXPECT_FALSE(pc.admit(9.0));
}

TEST(PacingController, StartupGrowsBatchGeometrically) {
  PacingConfig cfg = test_config();
  cfg.max_batch = 64;
  PacingController pc(cfg, 4);
  Sim sim{/*capacity=*/4.0, /*ppr=*/8, /*overhead=*/5};
  std::vector<int> targets;
  for (int i = 0; i < 5; ++i) {
    sim.step(pc, /*offered=*/1000.0);
    targets.push_back(pc.batch_target());
  }
  // 4 doubles each round until the ceiling.
  EXPECT_EQ(targets, (std::vector<int>{8, 16, 32, 64, 64}));
  EXPECT_EQ(pc.state(), State::kStartup);
}

TEST(PacingController, ShedOnlyRoundsDoNotPoisonTheFilters) {
  PacingController pc(test_config(), 4);
  // A batch that carried only shed requests reports no model-path work:
  // requests == 0, no service time, delay < 0.
  for (int i = 0; i < 10; ++i) {
    pc.on_batch_complete(/*now=*/100 * (i + 1), /*requests=*/0, /*plans=*/0,
                         /*service_ticks=*/0, /*delay_ticks=*/-1,
                         /*inflight=*/0.0);
  }
  EXPECT_EQ(pc.est_bw(), 0.0);
  EXPECT_EQ(pc.est_min_delay_ticks(), 0);
  EXPECT_EQ(pc.bdp_requests(), 0.0);
  EXPECT_EQ(pc.rounds(), 10);
  EXPECT_GE(pc.batch_target(), 1);
  EXPECT_GE(pc.cwnd(), pc.config().min_inflight);
}

TEST(PacingController, ResetRestoresColdStart) {
  PacingController pc(test_config(), 4);
  Sim sim{4.0, 8, 5};
  for (int i = 0; i < 50; ++i) sim.step(pc, 40.0);
  ASSERT_NE(pc.state(), State::kStartup);
  ASSERT_GT(pc.est_bw(), 0.0);
  pc.reset(4);
  EXPECT_EQ(pc.state(), State::kStartup);
  EXPECT_EQ(pc.batch_target(), 4);
  EXPECT_EQ(pc.cwnd(), 8.0);
  EXPECT_EQ(pc.rounds(), 0);
  EXPECT_EQ(pc.est_bw(), 0.0);
  EXPECT_EQ(pc.est_min_delay_ticks(), 0);
  EXPECT_FALSE(pc.full_bw_reached());
}

// Property test: seeded random service shapes and offered-load traces. After
// every round the controller must satisfy its invariants; over the whole
// trace the state machine must take the canonical path.
TEST(PacingController, RandomTracesHoldInvariants) {
  Rng base(1234);
  for (std::uint64_t trace = 0; trace < 6; ++trace) {
    Rng rng = base.fork(trace);
    SCOPED_TRACE("trace " + std::to_string(trace));
    PacingConfig cfg = test_config();
    PacingController pc(cfg, 4);
    Sim sim{/*capacity=*/static_cast<double>(rng.uniform_int(1, 8)),
            /*ppr=*/static_cast<int>(rng.uniform_int(2, 20)),
            /*overhead=*/rng.uniform_int(1, 20)};

    State prev = pc.state();
    std::int64_t last_transition = 0;
    bool seen_drain = false;
    bool seen_steady = false;
    for (int round = 0; round < 300; ++round) {
      const double offered = static_cast<double>(rng.uniform_int(1, 200));
      sim.step(pc, offered);
      SCOPED_TRACE("round " + std::to_string(round));

      // The batch target and admission window never leave their bounds.
      ASSERT_GE(pc.batch_target(), 1);
      ASSERT_LE(pc.batch_target(), cfg.max_batch);
      ASSERT_GE(pc.cwnd(), cfg.min_inflight);
      // The bandwidth estimate cannot exceed the simulated bottleneck.
      ASSERT_LE(pc.est_bw(), sim.capacity + 1e-12);

      if (pc.state() != prev) {
        // No oscillation faster than one RTT-equivalent window: every
        // transition waits out at least the dwell floor.
        ASSERT_GE(sim.now - last_transition, cfg.min_round_ticks);
        // DRAIN is only entered from STARTUP, and only after the bandwidth
        // plateau was detected.
        if (pc.state() == State::kDrain) {
          ASSERT_EQ(prev, State::kStartup);
          ASSERT_TRUE(pc.full_bw_reached());
          seen_drain = true;
        }
        // The first exit from STARTUP is into DRAIN, never directly beyond.
        if (prev == State::kStartup) {
          ASSERT_EQ(pc.state(), State::kDrain);
        }
        if (pc.state() == State::kSteady) seen_steady = true;
        last_transition = sim.now;
        prev = pc.state();
      } else {
        // While parked in a state, the machine must not silently restart its
        // dwell clock.
        ASSERT_EQ(pc.state_since(), last_transition);
      }
    }
    EXPECT_TRUE(seen_drain);
    EXPECT_TRUE(seen_steady);
    EXPECT_TRUE(pc.full_bw_reached());
  }
}

// Golden-trace regression: fixed service shape, constant offered load. The
// transition schedule and final estimates are pinned from a reference run;
// any change to filter or state-machine arithmetic shows up here.
TEST(PacingController, GoldenTraceRegression) {
  PacingController pc(test_config(), 4);
  Sim sim{/*capacity=*/4.0, /*ppr=*/8, /*overhead=*/5};

  struct Transition {
    int round;
    std::int64_t now;
    State from, to;
    int batch;
    double cwnd;
  };
  std::vector<Transition> got;
  State prev = pc.state();
  for (int round = 1; round <= 120; ++round) {
    sim.step(pc, /*offered=*/40.0);
    if (pc.state() != prev) {
      got.push_back(
          {round, sim.now, prev, pc.state(), pc.batch_target(), pc.cwnd()});
      prev = pc.state();
    }
  }

  const std::vector<Transition> want = {
      {6, 406, State::kStartup, State::kDrain, 13, 12.511278},
      {7, 437, State::kDrain, State::kSteady, 13, 25.022556},
      {40, 1460, State::kSteady, State::kProbe, 16, 31.278195},
      {41, 1497, State::kProbe, State::kSteady, 13, 25.022556},
      {74, 2514, State::kSteady, State::kProbe, 15, 28.108108},
      {75, 2549, State::kProbe, State::kSteady, 12, 22.486486},
      {110, 3564, State::kSteady, State::kProbe, 14, 27.857143},
      {111, 3597, State::kProbe, State::kSteady, 12, 22.285714},
  };
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("transition " + std::to_string(i));
    EXPECT_EQ(got[i].round, want[i].round);
    EXPECT_EQ(got[i].now, want[i].now);
    EXPECT_EQ(got[i].from, want[i].from);
    EXPECT_EQ(got[i].to, want[i].to);
    EXPECT_EQ(got[i].batch, want[i].batch);
    EXPECT_NEAR(got[i].cwnd, want[i].cwnd, 1e-6);
  }

  EXPECT_EQ(sim.now, 3858);
  EXPECT_EQ(pc.state(), State::kSteady);
  EXPECT_EQ(pc.batch_target(), 12);
  EXPECT_NEAR(pc.cwnd(), 22.285714285714285, 1e-9);
  EXPECT_NEAR(pc.est_bw(), 3.4285714285714284, 1e-12);
  EXPECT_EQ(pc.est_min_delay_ticks(), 26);
  EXPECT_NEAR(pc.bdp_requests(), 11.142857142857142, 1e-9);
  EXPECT_EQ(pc.plans_per_request(), 8.0);
  EXPECT_EQ(pc.rounds(), 120);
}

}  // namespace
}  // namespace loam::serve
