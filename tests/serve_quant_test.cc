// Tests of the opt-in int8 quantized serving path: the quantized twin's
// registry lifecycle (publish -> own gate verdict -> promote), the guarantee
// that the fp32 path is bit-identical when a quantized version exists but
// was not promoted, deviance rollback landing on the fp32 sibling, and
// deterministic checkpoint reload of the QuantizedCostModel itself.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/quant_model.h"
#include "obs/registry.h"
#include "serve/service.h"
#include "warehouse/flighting.h"

namespace loam::serve {
namespace {

namespace fs = std::filesystem;

struct QuantFixture {
  std::unique_ptr<core::ProjectRuntime> runtime;
  std::string root;

  explicit QuantFixture(const std::string& tag) {
    warehouse::ProjectArchetype a;
    a.name = "quant";
    a.seed = 5;
    a.n_tables = 14;
    a.n_templates = 8;
    a.queries_per_day = 50.0;
    a.stats_coverage = 0.15;
    a.cluster_machines = 24;
    core::RuntimeConfig rc;
    rc.seed = 31;
    runtime = std::make_unique<core::ProjectRuntime>(a, rc);
    runtime->simulate_history(5, 50);
    root = (fs::temp_directory_path() /
            ("loam_quant_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(root);
    fs::create_directories(root);
  }
  ~QuantFixture() { fs::remove_all(root); }

  ServeConfig config() const {
    ServeConfig cfg;
    cfg.predictor.epochs = 4;
    cfg.predictor.hidden_dim = 16;
    cfg.predictor.embed_dim = 16;
    cfg.predictor.tcn_layers = 2;
    cfg.gate.sample_queries = 6;
    cfg.gate.replay_runs = 2;
    cfg.min_train_examples = 20;
    cfg.bootstrap_candidate_queries = 10;
    cfg.batch_linger_us = 100;
    cfg.registry_root = root + "/registry";
    cfg.journal_path = root + "/feedback.jnl";
    return cfg;
  }

  warehouse::ExecutionResult execute(const warehouse::Plan& plan,
                                     std::uint64_t seed) const {
    warehouse::FlightingEnv env(runtime->config().cluster,
                                runtime->config().executor, seed);
    return env.replay_once(plan);
  }

  // Trees for calibration / direct model tests: the repository's executed
  // default plans through the service's own encoder.
  std::vector<nn::Tree> history_trees(const OptimizerService& service,
                                      std::size_t max) const {
    std::vector<nn::Tree> trees;
    for (const warehouse::QueryRecord& r : runtime->repository().records()) {
      trees.push_back(service.encoder().encode(r.plan, nullptr, std::nullopt));
      if (trees.size() >= max) break;
    }
    return trees;
  }
};

// Bootstrap with quantization enabled and a lenient gate: the fp32 model is
// trained, gated, and promoted as v1; its int8 twin is calibrated, gated
// under its OWN seed, published as v2 with quantized=1 metadata, and
// promoted — and a restarted service reloads the quantized checkpoint.
TEST(QuantServe, LifecyclePublishesGatesAndPromotes) {
  QuantFixture fx("lifecycle");
  ServeConfig cfg = fx.config();
  cfg.auto_retrain = false;
  cfg.gate.max_regression = 1e9;
  cfg.gate.max_regression_ratio = 1e9;
  cfg.quant.enabled = true;
  cfg.quant.calibration_examples = 64;

  {
    OptimizerService service(fx.runtime.get(), cfg);
    service.start();

    ASSERT_EQ(service.active_version(), 2);
    const OptimizerService::Stats stats = service.stats();
    EXPECT_EQ(stats.retrain_approved, 1u);
    EXPECT_EQ(stats.quant_published, 1u);
    EXPECT_EQ(stats.quant_approved, 1u);
    EXPECT_EQ(stats.quant_rejected, 0u);

    const std::vector<ModelVersionMeta> versions =
        service.registry().versions();
    ASSERT_EQ(versions.size(), 2u);
    EXPECT_FALSE(versions[0].quantized);
    EXPECT_TRUE(versions[1].quantized);
    EXPECT_TRUE(versions[1].approved);
    EXPECT_FALSE(versions[1].gate_json.empty());
    EXPECT_TRUE(fs::exists(versions[1].checkpoint_path));
    // The twin trains on nothing new: same watermark as its fp32 master.
    EXPECT_EQ(versions[1].watermark_day, versions[0].watermark_day);

    obs::Counter* const c_decisions =
        obs::Registry::instance().counter("loam.serve.quant.decisions");
    const std::uint64_t decisions_before = c_decisions->value();
    obs::set_metrics_enabled(true);
    std::vector<warehouse::Query> queries = fx.runtime->make_queries(8, 8, 3);
    for (const warehouse::Query& q : queries) {
      const ServeDecision d = service.optimize(q);
      EXPECT_EQ(d.model_version, 2);
      ASSERT_EQ(d.predicted.size(), d.generation.plans.size());
    }
    obs::set_metrics_enabled(false);
    EXPECT_GE(c_decisions->value(), decisions_before + queries.size());
    service.stop();
  }

  // Restart: latest approved is the quantized v2; snapshot_for() must
  // branch on the meta flag and reload through QuantizedCostModel::load.
  OptimizerService service(fx.runtime.get(), cfg);
  EXPECT_EQ(service.active_version(), 2);
  service.start();
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(9, 9, 2);
  for (const warehouse::Query& q : queries) {
    EXPECT_EQ(service.optimize(q).model_version, 2);
  }
  service.stop();
}

// A quantized version that exists in the registry but was NOT promoted must
// leave the fp32 serving path bit-identical: same versions served, same
// predicted costs to the last ULP. Cache off so the second pass re-scores
// through the live model rather than the memo.
TEST(QuantServe, UnpromotedQuantLeavesFp32PathBitIdentical) {
  QuantFixture fx("unpromoted");
  ServeConfig cfg = fx.config();
  cfg.auto_retrain = false;
  cfg.gate.max_regression = 1e9;
  cfg.gate.max_regression_ratio = 1e9;
  cfg.cache.enabled = false;
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();
  ASSERT_EQ(service.active_version(), 1);

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(8, 8, 6);
  std::vector<std::vector<double>> before;
  for (const warehouse::Query& q : queries) {
    const ServeDecision d = service.optimize(q);
    ASSERT_EQ(d.model_version, 1);
    before.push_back(d.predicted);
  }

  // Hand-publish an (unapproved) int8 twin of the serving model — the
  // registry now contains a quantized version the gate never promoted.
  const auto v1 = service.registry().find(1);
  ASSERT_TRUE(v1.has_value());
  auto fp32 = std::make_unique<core::AdaptiveCostPredictor>(
      service.encoder().feature_dim(), cfg.predictor);
  fp32->load(v1->checkpoint_path);
  const std::vector<nn::Tree> trees = fx.history_trees(service, 32);
  ASSERT_FALSE(trees.empty());
  std::vector<const nn::Tree*> calib;
  for (const nn::Tree& t : trees) calib.push_back(&t);
  core::QuantizedCostModel twin(*fp32, service.encoder().feature_dim(),
                                cfg.predictor, calib);
  ModelVersionMeta meta;
  meta.quantized = true;
  meta.approved = false;
  service.registry().publish(
      [&twin](const std::string& path) { twin.save(path); }, meta);
  ASSERT_TRUE(service.registry().find(2).has_value());
  EXPECT_TRUE(service.registry().find(2)->quantized);

  // Same queries, same fp32 model, same bits.
  EXPECT_EQ(service.active_version(), 1);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const ServeDecision d = service.optimize(queries[i]);
    EXPECT_EQ(d.model_version, 1);
    ASSERT_EQ(d.predicted.size(), before[i].size());
    for (std::size_t c = 0; c < d.predicted.size(); ++c) {
      EXPECT_EQ(d.predicted[c], before[i][c]) << "query " << i << " cand " << c;
    }
  }
  service.stop();
}

// When the serving quantized version regresses, the deviance monitor's
// rollback steps down to the previous approved version — its fp32 sibling —
// exactly as it would between two fp32 versions.
TEST(QuantServe, DevianceRollbackLandsOnFp32Sibling) {
  QuantFixture fx("rollback");
  ServeConfig cfg = fx.config();
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  cfg.monitor.window = 8;
  cfg.monitor.min_samples = 3;
  cfg.monitor.max_mean_overrun = 0.5;
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();

  // v1: an UNTRAINED fp32 predictor (its unfitted scaler predicts costs
  // near 1 while real executions land orders of magnitude higher — the
  // deterministic overrun trigger). v2: its int8 twin, promoted.
  auto fp32 = std::make_unique<core::AdaptiveCostPredictor>(
      service.encoder().feature_dim(), cfg.predictor);
  const std::vector<nn::Tree> trees = fx.history_trees(service, 32);
  ASSERT_FALSE(trees.empty());
  std::vector<const nn::Tree*> calib;
  for (const nn::Tree& t : trees) calib.push_back(&t);
  core::QuantizedCostModel twin(*fp32, service.encoder().feature_dim(),
                                cfg.predictor, calib);
  ModelVersionMeta m1;
  m1.approved = true;
  ASSERT_EQ(service.publish_and_swap(std::move(fp32), m1), 1);
  ModelVersionMeta m2;
  m2.approved = true;
  m2.quantized = true;
  service.registry().publish(
      [&twin](const std::string& path) { twin.save(path); }, m2);
  service.swap_to_version(2);
  ASSERT_EQ(service.active_version(), 2);

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 8, 40);
  std::size_t i = 0;
  while (service.active_version() == 2 && i < queries.size()) {
    const ServeDecision d = service.optimize(queries[i]);
    service.record_feedback(d, fx.execute(d.generation.plans[d.chosen], 7 + i));
    ++i;
  }
  ASSERT_EQ(service.active_version(), 1);
  EXPECT_EQ(service.stats().rollbacks, 1u);
  ASSERT_TRUE(service.registry().find(2).has_value());
  EXPECT_TRUE(service.registry().find(2)->rolled_back);
  EXPECT_TRUE(service.registry().find(2)->quantized);
  EXPECT_FALSE(service.registry().find(1)->quantized);
  service.stop();
}

// save() -> load() is deterministic re-quantization: the reloaded model
// scores every tree bit-identically to the instance that was saved.
TEST(QuantServe, CheckpointReloadBitIdentical) {
  QuantFixture fx("ckpt");
  ServeConfig cfg = fx.config();
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  OptimizerService service(fx.runtime.get(), cfg);

  const std::vector<nn::Tree> trees = fx.history_trees(service, 48);
  ASSERT_GE(trees.size(), 8u);
  std::vector<const nn::Tree*> calib;
  for (const nn::Tree& t : trees) calib.push_back(&t);
  core::AdaptiveCostPredictor fp32(service.encoder().feature_dim(),
                                   cfg.predictor);
  core::QuantizedCostModel original(fp32, service.encoder().feature_dim(),
                                    cfg.predictor, calib);
  const std::vector<double> want = original.predict_batch(trees);
  EXPECT_GT(original.model_bytes(), 0u);

  const std::string path = fx.root + "/quant.ckpt";
  original.save(path);
  core::QuantizedCostModel reloaded(service.encoder().feature_dim(),
                                    cfg.predictor);
  reloaded.load(path);
  const std::vector<double> got = reloaded.predict_batch(trees);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "tree " << i;
  }
  // The twin is inference-only by contract.
  EXPECT_THROW(original.fit({}, {}), std::exception);
}

// The quantized flag survives the registry's meta round trip, and metas
// written before the flag existed scan as fp32.
TEST(QuantServe, RegistryMetaQuantizedRoundTrip) {
  QuantFixture fx("meta");
  const std::string root = fx.root + "/registry";
  {
    ModelRegistry registry(root);
    ModelVersionMeta meta;
    meta.quantized = true;
    registry.publish(
        [](const std::string& path) { std::ofstream(path) << "stub"; }, meta);
  }
  ModelRegistry reopened(root);
  ASSERT_TRUE(reopened.find(1).has_value());
  EXPECT_TRUE(reopened.find(1)->quantized);

  // Strip the quantized line (an old-format meta): scans as fp32.
  const std::string meta_path = root + "/v000001.meta";
  ASSERT_TRUE(fs::exists(meta_path));
  std::ifstream in(meta_path);
  std::string line, rest;
  while (std::getline(in, line)) {
    if (line.rfind("quantized\t", 0) == 0) continue;
    rest += line + "\n";
  }
  in.close();
  std::ofstream(meta_path, std::ios::trunc) << rest;
  ModelRegistry legacy(root);
  ASSERT_TRUE(legacy.find(1).has_value());
  EXPECT_FALSE(legacy.find(1)->quantized);
}

}  // namespace
}  // namespace loam::serve
