// Unit tests of the utility layer: RNG, multi-segment hashing, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/hash.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace loam {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(7);
  Rng child = a.split();
  // The child stream must differ from the parent's continuation.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.uniform() != child.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ForkIsIndependentOfDrawPosition) {
  // fork() is const and keyed only by (construction seed, index): the same
  // child comes back no matter how much the parent has already drawn. This is
  // the property that lets concurrent trials derive their streams in any
  // order and still match the serial run.
  Rng a(42);
  Rng before = a.fork(3);
  for (int i = 0; i < 50; ++i) a.uniform();
  Rng after = a.fork(3);
  for (int i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(before.uniform(), after.uniform());
}

TEST(Rng, ForkPinsHistoricalDerivation) {
  // Regression pin: fork(i) must reproduce the per-plan stream derivation
  // that paired_replay historically computed inline. Changing this constant
  // or the mixing silently breaks replay reproducibility across versions.
  const std::uint64_t seed = 0x1234'5678'9abcull;
  for (std::uint64_t i : {0ull, 1ull, 7ull, 1000ull}) {
    Rng forked = Rng(seed).fork(i);
    Rng legacy(mix64(seed + 0x9e37 * (i + 1)));
    EXPECT_EQ(forked.seed(), mix64(seed + 0x9e37 * (i + 1)));
    for (int d = 0; d < 16; ++d) {
      EXPECT_DOUBLE_EQ(forked.uniform(), legacy.uniform());
    }
  }
}

TEST(Rng, ForkStreamsAreDecorrelatedAcrossIndices) {
  Rng parent(99);
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t i = 0; i < 64; ++i) {
    Rng child = parent.fork(i);
    first_draws.insert(child.engine()());
  }
  // All 64 children start at distinct points.
  EXPECT_EQ(first_draws.size(), 64u);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ZipfBoundsAndSkew) {
  Rng rng(11);
  long long ones = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const auto v = rng.zipf(100, 1.0);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
    if (v == 1) ++ones;
  }
  // Under Zipf(1) over 100 items, rank 1 has probability ~1/H_100 ~= 0.19;
  // uniform would give 0.01.
  EXPECT_GT(static_cast<double>(ones) / draws, 0.08);
}

TEST(Rng, ZipfZeroSkewIsUniformish) {
  Rng rng(13);
  double acc = 0.0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) acc += static_cast<double>(rng.zipf(100, 0.0));
  EXPECT_NEAR(acc / draws, 50.5, 2.0);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  const auto idx = rng.sample_without_replacement(50, 20);
  ASSERT_EQ(idx.size(), 20u);
  std::set<int> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 20u);
  for (int i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 50);
  }
}

TEST(Hash, DeterministicAndSeedSensitive) {
  EXPECT_EQ(hash64("orders", 1), hash64("orders", 1));
  EXPECT_NE(hash64("orders", 1), hash64("orders", 2));
  EXPECT_NE(hash64("orders", 1), hash64("lineitem", 1));
}

TEST(Hash, MultiSegmentEncodingSetsOneBitPerSegment) {
  MultiSegmentHashConfig cfg{5, 10};
  std::vector<float> out(static_cast<std::size_t>(cfg.dim()), 0.0f);
  encode_identifier("orders", cfg, out);
  for (int seg = 0; seg < cfg.segments; ++seg) {
    int bits = 0;
    for (int i = 0; i < cfg.segment_dim; ++i) {
      bits += out[static_cast<std::size_t>(seg * cfg.segment_dim + i)] > 0.0f;
    }
    EXPECT_EQ(bits, 1) << "segment " << seg;
  }
}

TEST(Hash, UnionEncodingPreservesMembers) {
  MultiSegmentHashConfig cfg{5, 10};
  std::vector<std::string> ids = {"a.x", "b.y", "c.z"};
  const auto all = encode_identifier_set(ids, cfg);
  for (const auto& id : ids) {
    std::vector<float> one(static_cast<std::size_t>(cfg.dim()), 0.0f);
    encode_identifier(id, cfg, one);
    for (std::size_t i = 0; i < one.size(); ++i) {
      if (one[i] > 0.0f) EXPECT_GT(all[i], 0.0f);
    }
  }
}

// Appendix B.1's claim: multi-segment hashing reliably encodes orders of
// magnitude more identifiers than single-bucket hashing of the same width.
TEST(Hash, MultiSegmentCollisionAdvantage) {
  MultiSegmentHashConfig cfg{5, 10};
  const double p_single = expected_collision_prob_single(100, cfg.dim());
  const double p_multi = expected_collision_prob_multi(100, cfg);
  EXPECT_GT(p_single, 0.9);   // 100 ids in 50 buckets: collisions near-certain
  EXPECT_LT(p_multi, 0.06);   // 100 ids across 10^5 effective space: rare
}

TEST(Hash, MultiSegmentEmpiricalDistinctness) {
  MultiSegmentHashConfig cfg{5, 10};
  std::set<std::vector<float>> codes;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    std::vector<float> out(static_cast<std::size_t>(cfg.dim()), 0.0f);
    encode_identifier("table_" + std::to_string(i), cfg, out);
    codes.insert(out);
  }
  // Expected pairwise-collision count ~ n^2/2 * 1e-5 = 20; allow slack.
  EXPECT_GT(static_cast<int>(codes.size()), n - 80);
}

TEST(Stats, MeanVarianceStddev) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
  EXPECT_NEAR(relative_stddev(xs), 2.138 / 5.0, 1e-3);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_NEAR(percentile(xs, 50), 5.5, 1e-9);
}

TEST(Stats, PearsonCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
  std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PhiAndInverseRoundTrip) {
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(phi(phi_inverse(p)), p, 1e-7);
  }
}

TEST(Stats, LogNormalMoments) {
  LogNormal d{1.0, 0.5};
  EXPECT_NEAR(d.mean(), std::exp(1.0 + 0.125), 1e-9);
  EXPECT_NEAR(d.median(), std::exp(1.0), 1e-9);
  EXPECT_NEAR(d.cdf(d.median()), 0.5, 1e-9);
  EXPECT_NEAR(d.quantile(0.5), d.median(), 1e-6);
}

TEST(Stats, LogNormalPdfIntegratesToOne) {
  LogNormal d{2.0, 0.7};
  const double total =
      integrate([&d](double x) { return d.pdf(x); }, 1e-6, d.quantile(1 - 1e-8), 8192);
  EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST(Stats, MleRecoversLogNormalParameters) {
  Rng rng(21);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.lognormal(3.0, 0.4));
  const LogNormal fit = fit_lognormal_mle(samples);
  EXPECT_NEAR(fit.mu, 3.0, 0.02);
  EXPECT_NEAR(fit.sigma, 0.4, 0.02);
}

TEST(Stats, KsTestAcceptsTrueDistribution) {
  Rng rng(22);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.lognormal(1.0, 0.3));
  const KsResult r = ks_test_lognormal(samples, fit_lognormal_mle(samples));
  EXPECT_GT(r.p_value, 0.05);
}

TEST(Stats, KsTestRejectsWrongDistribution) {
  Rng rng(23);
  std::vector<double> samples;
  // Uniform costs are a bad fit for a narrow log-normal.
  for (int i = 0; i < 500; ++i) samples.push_back(rng.uniform(1.0, 100.0));
  const KsResult r = ks_test_lognormal(samples, LogNormal{0.0, 0.1});
  EXPECT_LT(r.p_value, 1e-4);
}

TEST(Stats, QqCorrelationHighForTrueDistribution) {
  Rng rng(24);
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) samples.push_back(rng.lognormal(2.0, 0.5));
  EXPECT_GT(qq_correlation(samples, fit_lognormal_mle(samples)), 0.99);
}

TEST(Stats, LogMinMaxNormalizesToUnitRange) {
  std::vector<double> xs = {1.0, 10.0, 100.0, 1000.0};
  const LogMinMax n = LogMinMax::fit(xs);
  EXPECT_NEAR(n.normalize(1.0), 0.0, 1e-9);
  EXPECT_NEAR(n.normalize(1000.0), 1.0, 1e-9);
  const double mid = n.normalize(31.6);
  EXPECT_GT(mid, 0.4);
  EXPECT_LT(mid, 0.6);
  // Clamped outside the fitted range.
  EXPECT_DOUBLE_EQ(n.normalize(1e9), 1.0);
}

TEST(Stats, IntegrateQuadratic) {
  const double v = integrate([](double x) { return x * x; }, 0.0, 3.0, 512);
  EXPECT_NEAR(v, 9.0, 1e-9);
}

TEST(TablePrinterTest, RendersAlignedRows) {
  TablePrinter t({"Method", "Cost"});
  t.add_row({"MaxCompute", TablePrinter::fmt(8438.0, 0)});
  t.add_row({"LOAM", TablePrinter::fmt(7537.0, 0)});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("MaxCompute"), std::string::npos);
  EXPECT_NE(out.find("7537"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TablePrinterTest, Formatting) {
  EXPECT_EQ(TablePrinter::fmt_int(1824978), "1,824,978");
  EXPECT_EQ(TablePrinter::fmt_pct(0.231), "23.1%");
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace loam
