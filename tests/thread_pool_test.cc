// Tests of the work-stealing-free thread pool: task completion via futures,
// exception propagation out of parallel_for, zero-task and single-thread
// edge cases, and deadlock-freedom of nested submission. The ctest
// registration runs this binary under --gtest_repeat so scheduling races get
// many chances to surface (and so the TSan build sees varied interleavings).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace loam::util {
namespace {

TEST(ThreadPool, SubmittedTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1);
      return i * i;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SubmitCapturesTaskException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 200;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(50,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 13) throw std::runtime_error("trial 13 failed");
                        }),
      std::runtime_error);
  // The pool stays usable after a failed loop.
  std::atomic<int> after{0};
  pool.parallel_for(8, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
  EXPECT_LE(ran.load(), 50);
}

TEST(ThreadPool, ZeroTasksReturnsImmediately) {
  ThreadPool pool(4);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  // The degenerate serial pool: everything executes on the caller.
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, SingleWorkerCompletes) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(32, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Workers running an outer loop item issue an inner parallel_for on the
  // same pool; the inner loop must run inline on the worker instead of
  // waiting for pool capacity that may never free up.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPool, NestedSubmitFromWorkerCompletes) {
  // Tasks submitted from inside worker tasks must still drain (no waiting on
  // their futures from the worker — the destructor drains the queue before
  // joining, so everything has run once the pool is gone).
  std::atomic<int> nested{0};
  {
    ThreadPool pool(2);
    auto outer = pool.submit([&] {
      for (int i = 0; i < 4; ++i) {
        pool.submit([&nested] { nested.fetch_add(1); });
      }
      return 1;
    });
    EXPECT_EQ(outer.get(), 1);
  }
  EXPECT_EQ(nested.load(), 4);
}

TEST(ThreadPool, ManyMoreItemsThanWorkers) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  const std::size_t n = 5000;
  pool.parallel_for(n, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n * (n - 1) / 2));
}

}  // namespace
}  // namespace loam::util
