// Tests of the deviance analytics (Section 5 / Theorem 1 / Appendix C & E.1):
// the min-cost distribution of Lemma 1, the Eq. (2) expected deviance,
// Monte-Carlo agreement, and the Theorem-1 ordering.
#include <gtest/gtest.h>

#include <cmath>

#include "core/deviance.h"

namespace loam::core {
namespace {

TEST(Deviance, MinCostPdfIntegratesToOne) {
  const std::vector<LogNormal> dists = {{5.0, 0.3}, {5.2, 0.4}, {4.8, 0.25}};
  double lo = 1.0, hi = 0.0;
  for (const LogNormal& d : dists) {
    lo = std::min(lo, d.quantile(1e-6));
    hi = std::max(hi, d.quantile(1.0 - 1e-6));
  }
  const double total = integrate(
      [&dists](double x) { return min_cost_pdf(dists, x); }, lo * 0.5, hi, 4096);
  EXPECT_NEAR(total, 1.0, 2e-3);
}

TEST(Deviance, MinOfSingleDistributionIsItself) {
  const std::vector<LogNormal> one = {{3.0, 0.5}};
  const LogNormal d = one[0];
  for (double x : {5.0, 20.0, 60.0}) {
    EXPECT_NEAR(min_cost_pdf(one, x), d.pdf(x), 1e-12);
  }
  EXPECT_NEAR(expected_min_cost(one), d.mean(), d.mean() * 1e-3);
}

TEST(Deviance, ExpectedMinBelowEveryMean) {
  const std::vector<LogNormal> dists = {{5.0, 0.3}, {5.1, 0.5}, {5.05, 0.2}};
  const double emin = expected_min_cost(dists);
  for (const LogNormal& d : dists) EXPECT_LT(emin, d.mean());
  // Cross-check against Monte Carlo.
  Rng rng(3);
  EXPECT_NEAR(emin, mc_expected_min_cost(dists, rng, 60000), emin * 0.02);
}

TEST(Deviance, AnalyticMatchesMonteCarlo) {
  const std::vector<LogNormal> dists = {{4.0, 0.35}, {4.2, 0.3}, {4.1, 0.45}};
  Rng rng(5);
  for (int sel = 0; sel < 3; ++sel) {
    const double analytic = expected_deviance(dists, sel);
    const double mc = mc_expected_deviance(dists, sel, rng, 80000);
    EXPECT_NEAR(analytic, mc, std::max(0.6, 0.08 * mc)) << "selected " << sel;
  }
}

TEST(Deviance, Theorem1Ordering) {
  // E[D(M)] >= E[D(M_b)] >= E[D(M_o)] = 0 for every fixed selection M.
  const std::vector<LogNormal> dists = {{4.0, 0.3}, {4.4, 0.3}, {4.15, 0.5}};
  const int mb = best_achievable_index(dists);
  const double d_mb = expected_deviance(dists, mb);
  EXPECT_GE(d_mb, 0.0);
  for (int sel = 0; sel < 3; ++sel) {
    EXPECT_GE(expected_deviance(dists, sel) + 1e-9, d_mb) << "selected " << sel;
  }
}

TEST(Deviance, BestAchievableIndexIsArgminMean) {
  const std::vector<LogNormal> dists = {{4.0, 0.1}, {3.5, 0.1}, {3.9, 0.1}};
  EXPECT_EQ(best_achievable_index(dists), 1);
  // Mean depends on sigma too: exp(mu + sigma^2/2).
  const std::vector<LogNormal> tricky = {{3.0, 1.5}, {3.5, 0.1}};
  // exp(3 + 1.125) = exp(4.125) > exp(3.505).
  EXPECT_EQ(best_achievable_index(tricky), 1);
}

TEST(Deviance, DominantPlanHasNearZeroDeviance) {
  // One plan 10x cheaper than the rest: selecting it is essentially optimal.
  const std::vector<LogNormal> dists = {{3.0, 0.2}, {5.3, 0.2}, {5.5, 0.2}};
  const double d = expected_deviance(dists, 0);
  EXPECT_LT(d, 0.01 * dists[0].mean());
  // Selecting a dominated plan costs about the full gap.
  const double bad = expected_deviance(dists, 1);
  EXPECT_GT(bad, 3.0 * dists[0].mean());
}

TEST(Deviance, FitFromSamplesRecoversParameters) {
  Rng rng(7);
  std::vector<std::vector<double>> samples(2);
  for (int i = 0; i < 4000; ++i) {
    samples[0].push_back(rng.lognormal(4.0, 0.3));
    samples[1].push_back(rng.lognormal(4.5, 0.2));
  }
  const std::vector<LogNormal> fits = fit_cost_distributions(samples);
  EXPECT_NEAR(fits[0].mu, 4.0, 0.05);
  EXPECT_NEAR(fits[1].sigma, 0.2, 0.03);
}

TEST(Deviance, EmpiricalDevianceFromPairedSamples) {
  // Hand-built paired samples: candidate 0 = {10, 20}, candidate 1 = {12, 14}.
  const std::vector<std::vector<double>> samples = {{10.0, 20.0}, {12.0, 14.0}};
  // Oracle per run: min(10,12)=10, min(20,14)=14 -> mean 12.
  EXPECT_DOUBLE_EQ(empirical_oracle_cost(samples), 12.0);
  // Deviance of selecting candidate 0: (10-10 + 20-14)/2 = 3.
  EXPECT_DOUBLE_EQ(empirical_expected_deviance(samples, 0), 3.0);
  // Candidate 1: (12-10 + 14-14)/2 = 1.
  EXPECT_DOUBLE_EQ(empirical_expected_deviance(samples, 1), 1.0);
  // Deviance is non-negative for any selection (Theorem 1 empirical face).
  for (int sel : {0, 1}) {
    EXPECT_GE(empirical_expected_deviance(samples, sel), 0.0);
  }
}

TEST(Deviance, InvalidInputsRejected) {
  EXPECT_THROW(expected_min_cost({}), std::invalid_argument);
  const std::vector<LogNormal> dists = {{1.0, 0.1}};
  EXPECT_THROW(expected_deviance(dists, 5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(expected_deviance(dists, 0), 0.0);  // single candidate
}

// Property sweep: deviance of the best-achievable choice shrinks as the
// spread between candidate means grows (easier decisions).
class DevianceSweep : public ::testing::TestWithParam<double> {};

TEST_P(DevianceSweep, EasierDecisionsLowerRelativeDeviance) {
  const double gap = GetParam();
  const std::vector<LogNormal> close = {{4.0, 0.3}, {4.0 + gap, 0.3}};
  const int mb = best_achievable_index(close);
  const double rel = expected_deviance(close, mb) / expected_min_cost(close);
  // With no mean gap the intrinsic deviance is largest; with a 1.0 log-gap it
  // nearly vanishes.
  if (gap >= 1.0) {
    EXPECT_LT(rel, 0.02);
  } else if (gap == 0.0) {
    EXPECT_GT(rel, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Gaps, DevianceSweep, ::testing::Values(0.0, 0.25, 1.0, 2.0));

}  // namespace
}  // namespace loam::core
