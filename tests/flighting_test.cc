// Tests of the flighting environment: replay must be a deterministic
// function of (plan, seed), since the deployment gate and the paired-replay
// evaluation harness both rely on reproducible ground truth.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/loam.h"
#include "warehouse/flighting.h"

namespace loam::warehouse {
namespace {

struct FlightingFixture {
  std::unique_ptr<core::ProjectRuntime> runtime;

  FlightingFixture() {
    ProjectArchetype a;
    a.name = "flighting";
    a.seed = 5;
    a.n_tables = 14;
    a.n_templates = 8;
    a.queries_per_day = 50.0;
    a.stats_coverage = 0.15;
    a.cluster_machines = 24;
    core::RuntimeConfig rc;
    rc.seed = 31;
    runtime = std::make_unique<core::ProjectRuntime>(a, rc);
    runtime->simulate_history(2, 30);
  }

  const Plan& some_plan() const {
    return runtime->repository().records().front().plan;
  }

  FlightingEnv env(std::uint64_t seed) const {
    return FlightingEnv(runtime->config().cluster, runtime->config().executor,
                        seed);
  }
};

TEST(FlightingEnv, ReplayIsDeterministicPerSeed) {
  FlightingFixture fx;
  const Plan& plan = fx.some_plan();

  FlightingEnv env_a = fx.env(1234);
  FlightingEnv env_b = fx.env(1234);
  const std::vector<double> costs_a = env_a.replay(plan, 6);
  const std::vector<double> costs_b = env_b.replay(plan, 6);
  ASSERT_EQ(costs_a.size(), 6u);
  // Same seed -> bit-identical replay streams.
  EXPECT_EQ(costs_a, costs_b);
  for (const double c : costs_a) EXPECT_GT(c, 0.0);

  // Replays consume the environment stream: repeated replays in ONE env
  // continue the evolution instead of repeating it.
  const std::vector<double> costs_a2 = env_a.replay(plan, 6);
  EXPECT_NE(costs_a, costs_a2);

  // A different seed realizes different environments.
  FlightingEnv env_c = fx.env(99);
  EXPECT_NE(env_c.replay(plan, 6), costs_a);
}

TEST(FlightingEnv, ReplayOnceMatchesSeededStream) {
  FlightingFixture fx;
  const Plan& plan = fx.some_plan();
  FlightingEnv env_a = fx.env(42);
  FlightingEnv env_b = fx.env(42);
  const ExecutionResult r_a = env_a.replay_once(plan);
  const ExecutionResult r_b = env_b.replay_once(plan);
  EXPECT_EQ(r_a.cpu_cost, r_b.cpu_cost);
  EXPECT_EQ(r_a.latency_s, r_b.latency_s);
  ASSERT_EQ(r_a.stages.size(), r_b.stages.size());
  EXPECT_GT(r_a.stages.size(), 0u);
}

TEST(FlightingEnv, PairedReplayIsSeedDeterministic) {
  FlightingFixture fx;
  std::vector<Plan> plans;
  const auto& records = fx.runtime->repository().records();
  for (std::size_t i = 0; i < records.size() && plans.size() < 3; i += 7) {
    plans.push_back(records[i].plan);
  }
  ASSERT_GE(plans.size(), 2u);

  const auto samples_a = core::paired_replay(
      plans, fx.runtime->config().cluster, fx.runtime->config().executor,
      /*runs=*/4, /*seed=*/777);
  const auto samples_b = core::paired_replay(
      plans, fx.runtime->config().cluster, fx.runtime->config().executor,
      /*runs=*/4, /*seed=*/777);
  EXPECT_EQ(samples_a, samples_b);
  ASSERT_EQ(samples_a.size(), plans.size());
  for (const auto& per_plan : samples_a) EXPECT_EQ(per_plan.size(), 4u);
}

}  // namespace
}  // namespace loam::warehouse
