// Flight-recorder suite: interpolated histogram quantiles (golden values),
// recorder ring semantics on a virtual clock, snapshot-delta consistency
// under concurrent writers, SLO rule hysteresis (threshold / ratio / burn
// rate), the recorder-on bit-identity house rule against the serve path
// (certified by the TSan gate), and dump-bundle well-formedness after a
// forced deviance rollback.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "serve/service.h"

namespace loam::obs {
namespace {

namespace fs = std::filesystem;

// Every test must leave the process-wide flags disabled (other suites in
// this binary assume the default-off state).
struct ObsGuard {
  ~ObsGuard() {
    set_metrics_enabled(false);
    set_tracing_enabled(false);
  }
};

// Minimal structural JSON checker (same as tests/obs_test.cc); the CI smoke
// additionally validates dump files with tools/obs_report.py --validate.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false, escaped = false;
  char prev = 0;  // last structural character
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        prev = '"';
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[':
        if (prev == '}' || prev == ']' || prev == '"') return false;
        stack.push_back(c);
        prev = c;
        break;
      case '}': case ']':
        if (stack.empty()) return false;
        if (prev == ',') return false;  // trailing comma
        if (c == '}' && stack.back() != '{') return false;
        if (c == ']' && stack.back() != '[') return false;
        stack.pop_back();
        prev = c;
        break;
      case ',':
        if (prev == ',' || prev == '{' || prev == '[') return false;
        prev = c;
        break;
      case ':': prev = c; break;
      default:
        if (!std::isspace(static_cast<unsigned char>(c))) prev = 'v';
        break;
    }
  }
  return stack.empty() && !in_string;
}

// ---------------------------------------------------------------------------
// Quantile estimator
// ---------------------------------------------------------------------------

TEST(HistogramQuantile, GoldenValuesAndEdgeCases) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0, 8.0};
  // 2 in (0,1], 6 in (2,4], 2 overflow (>8): total 10.
  const std::vector<std::uint64_t> buckets = {2, 0, 6, 0, 2};

  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, buckets, 0.0), 0.0);
  // rank 2 lands exactly at the end of the first bucket: lo + 1.0 * width.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, buckets, 0.2), 1.0);
  // rank 5 is 3/6 through the (2,4] bucket: 2 + 0.5 * 2.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, buckets, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, buckets, 0.8), 4.0);
  // Overflow bucket has no upper edge: clamp to the last finite bound.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, buckets, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, buckets, 0.95), 8.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, buckets, 1.5), 8.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, buckets, -0.5), 0.0);

  // No data -> 0; degenerate bounds -> 0.
  EXPECT_DOUBLE_EQ(
      histogram_quantile(bounds, std::vector<std::uint64_t>(5, 0), 0.99), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile({}, {7}, 0.5), 0.0);
}

TEST(FixedBucketQuantile, MatchesLiveHistogramSnapshot) {
  ObsGuard guard;
  set_metrics_enabled(true);
  const std::vector<double> bounds = Histogram::exponential_bounds(0.001, 2.0, 12);
  Histogram* h =
      Registry::instance().histogram("recorder_test.fbq_hist", bounds);
  FixedBucketQuantile fbq(bounds);

  std::uint64_t x = 88172645463325252ull;  // xorshift64: fixed, RNG-free
  for (int i = 0; i < 500; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const double v = 0.0005 * static_cast<double>(x % 10'000);
    h->observe(v);
    fbq.observe(v);
  }

  const RegistrySnapshot snap = Registry::instance().snapshot();
  const MetricSnapshot* m = snap.find("recorder_test.fbq_hist");
  ASSERT_NE(m, nullptr);
  // Identical bucketing implies identical interpolated quantiles. Under
  // --gtest_repeat the registry handle accumulates across iterations, but
  // scaling every bucket by the same factor leaves quantiles unchanged.
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(histogram_quantile(*m, q), fbq.quantile(q)) << "q=" << q;
  }
  EXPECT_GE(m->count, fbq.count());
}

// ---------------------------------------------------------------------------
// Recorder rings
// ---------------------------------------------------------------------------

TEST(Recorder, RingOverwritesOldestOnVirtualClock) {
  ObsGuard guard;
  set_metrics_enabled(true);
  Counter* c = Registry::instance().counter("recorder_test.ring_count");

  auto t = std::make_shared<std::atomic<std::int64_t>>(0);
  RecorderConfig rc;
  rc.ring_capacity = 4;
  rc.clock = [t] { return t->load(std::memory_order_relaxed); };
  Recorder rec(rc);

  constexpr int kTicks = 10;
  for (int i = 1; i <= kTicks; ++i) {
    t->store(static_cast<std::int64_t>(i) * 1'000'000'000,
             std::memory_order_relaxed);
    c->add(static_cast<std::uint64_t>(i));  // i increments during interval i
    const RecorderTick tick = rec.sample_once();
    EXPECT_EQ(tick.t_ns, static_cast<std::int64_t>(i) * 1'000'000'000);
    const TickSeries* ts = tick.find("recorder_test.ring_count");
    ASSERT_NE(ts, nullptr);
    EXPECT_EQ(ts->kind, MetricKind::kCounter);
    EXPECT_EQ(ts->delta, static_cast<std::uint64_t>(i));
    if (i > 1) {  // dt = 1s exactly -> rate == delta. First tick has dt 0.
      EXPECT_DOUBLE_EQ(tick.dt_seconds, 1.0);
      EXPECT_DOUBLE_EQ(ts->value, static_cast<double>(i));
    }
  }

  EXPECT_EQ(rec.samples(), static_cast<std::uint64_t>(kTicks));
  EXPECT_GT(rec.overwrites(), 0u);

  bool found = false;
  for (const Recorder::Series& s : rec.history()) {
    if (s.name != "recorder_test.ring_count") continue;
    found = true;
    EXPECT_EQ(s.total_samples, static_cast<std::uint64_t>(kTicks));
    // Capacity 4: only the newest 4 ticks survive, oldest first.
    ASSERT_EQ(s.samples.size(), 4u);
    for (std::size_t k = 0; k < s.samples.size(); ++k) {
      const int i = kTicks - 3 + static_cast<int>(k);  // ticks 7..10
      EXPECT_EQ(s.samples[k].t_ns,
                static_cast<std::int64_t>(i) * 1'000'000'000);
      EXPECT_EQ(s.samples[k].delta, static_cast<std::uint64_t>(i));
    }
  }
  EXPECT_TRUE(found);

  JsonWriter w;
  rec.history_to_json(w);
  EXPECT_TRUE(json_well_formed(w.str()));
}

TEST(Recorder, SnapshotDeltasReconcileUnderConcurrentWriters) {
  ObsGuard guard;
  set_metrics_enabled(true);
  Counter* c = Registry::instance().counter("recorder_test.conc_count");
  const std::vector<double> bounds = Histogram::linear_bounds(0.1, 0.1, 8);
  Histogram* h =
      Registry::instance().histogram("recorder_test.conc_hist", bounds);

  auto t = std::make_shared<std::atomic<std::int64_t>>(0);
  RecorderConfig rc;
  rc.clock = [t] {
    return t->fetch_add(1'000'000, std::memory_order_relaxed) + 1'000'000;
  };
  Recorder rec(rc);

  // Hardware concurrency is 1 in CI: force 4 writer threads regardless.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        c->add(1);
        h->observe(0.1 * static_cast<double>((w + i) % 10));
      }
    });
  }
  // Sample concurrently with the writers: each tick must see a consistent
  // snapshot (per-location monotone), never a torn or negative delta.
  for (int i = 0; i < 50; ++i) rec.sample_once();
  for (std::thread& th : writers) th.join();
  rec.sample_once();  // quiescent: captures everything the writers recorded

  std::uint64_t count_sum = 0, hist_sum = 0;
  std::vector<std::uint64_t> bucket_sum(bounds.size() + 1, 0);
  for (const Recorder::Series& s : rec.history()) {
    if (s.name == "recorder_test.conc_count") {
      for (const SeriesSample& sample : s.samples) count_sum += sample.delta;
    } else if (s.name == "recorder_test.conc_hist") {
      for (const SeriesSample& sample : s.samples) {
        hist_sum += sample.delta;
        ASSERT_EQ(sample.buckets.size(), bucket_sum.size());
        for (std::size_t b = 0; b < sample.buckets.size(); ++b) {
          bucket_sum[b] += sample.buckets[b];
        }
      }
    }
  }
  // After quiescence the per-interval deltas reconcile exactly with the
  // cumulative totals (the first tick's delta absorbs any pre-recorder
  // residue from --gtest_repeat reruns).
  const RegistrySnapshot snap = Registry::instance().snapshot();
  const MetricSnapshot* mc = snap.find("recorder_test.conc_count");
  const MetricSnapshot* mh = snap.find("recorder_test.conc_hist");
  ASSERT_NE(mc, nullptr);
  ASSERT_NE(mh, nullptr);
  EXPECT_EQ(count_sum, mc->count);
  EXPECT_EQ(hist_sum, mh->count);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < bucket_sum.size(); ++b) {
    EXPECT_EQ(bucket_sum[b], mh->buckets[b]) << "bucket " << b;
    bucket_total += bucket_sum[b];
  }
  EXPECT_EQ(bucket_total, hist_sum);
}

// ---------------------------------------------------------------------------
// SLO rules
// ---------------------------------------------------------------------------

TickSeries gauge_series(const std::string& name, double value) {
  TickSeries s;
  s.name = name;
  s.kind = MetricKind::kGauge;
  s.value = value;
  return s;
}

TickSeries counter_series(const std::string& name, std::uint64_t delta,
                          double rate) {
  TickSeries s;
  s.name = name;
  s.kind = MetricKind::kCounter;
  s.delta = delta;
  s.value = rate;
  return s;
}

RecorderTick make_tick(std::int64_t t_ns, double dt,
                       std::vector<TickSeries> series) {
  RecorderTick tick;
  tick.t_ns = t_ns;
  tick.dt_seconds = dt;
  tick.series = std::move(series);
  return tick;
}

TEST(SloEngine, ThresholdFiresAfterForSamplesAndClearsWithHysteresis) {
  SloEngine engine;
  SloRule rule;
  rule.name = "g.high";
  rule.metric = "g";
  rule.threshold = 10.0;
  rule.for_samples = 3;
  rule.clear_samples = 2;
  engine.add_rule(rule);

  std::int64_t t = 0;
  auto step = [&](double v) {
    return engine.evaluate(make_tick(t += 1'000'000'000, 1.0,
                                     {gauge_series("g", v)}));
  };

  EXPECT_TRUE(step(20.0).empty());  // breach 1
  EXPECT_TRUE(step(20.0).empty());  // breach 2
  const std::vector<Alert> fired = step(20.0);  // breach 3 -> fires
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, "g.high");
  EXPECT_EQ(fired[0].metric, "g");
  EXPECT_DOUBLE_EQ(fired[0].value, 20.0);
  EXPECT_TRUE(fired[0].active);
  ASSERT_EQ(engine.active().size(), 1u);

  // One healthy tick inside a bad stretch does not flap the alert...
  EXPECT_TRUE(step(5.0).empty());
  EXPECT_EQ(engine.active().size(), 1u);
  EXPECT_TRUE(step(20.0).empty());  // still active, no re-fire
  EXPECT_EQ(engine.log().size(), 1u);
  // ... but clear_samples consecutive healthy ticks clear it.
  EXPECT_TRUE(step(5.0).empty());
  EXPECT_TRUE(step(5.0).empty());
  EXPECT_TRUE(engine.active().empty());
  ASSERT_EQ(engine.log().size(), 1u);
  EXPECT_FALSE(engine.log()[0].active);
  EXPECT_GT(engine.log()[0].cleared_t_ns, engine.log()[0].fired_t_ns);

  // A fresh breach run fires a SECOND alert record.
  step(20.0);
  step(20.0);
  ASSERT_EQ(step(20.0).size(), 1u);
  EXPECT_EQ(engine.log().size(), 2u);

  JsonWriter w;
  engine.to_json(w);
  EXPECT_TRUE(json_well_formed(w.str()));
}

TEST(SloEngine, LessThanRuleAndMissingSeriesIsHealthy) {
  SloEngine engine;
  SloRule rule;
  rule.name = "g.low";
  rule.metric = "g";
  rule.cmp = SloRule::Cmp::kLt;
  rule.threshold = 1.0;
  engine.add_rule(rule);

  // Missing series: healthy by absence, never fires.
  EXPECT_TRUE(engine.evaluate(make_tick(1, 1.0, {})).empty());
  EXPECT_TRUE(
      engine.evaluate(make_tick(2, 1.0, {gauge_series("g", 2.0)})).empty());
  EXPECT_EQ(
      engine.evaluate(make_tick(3, 1.0, {gauge_series("g", 0.5)})).size(), 1u);
}

TEST(SloEngine, RatioRuleSkipsZeroDenominator) {
  SloEngine engine;
  SloRule rule;
  rule.name = "shed.ratio";
  rule.kind = SloRule::Kind::kRatio;
  rule.metric = "shed";
  rule.denominator = "adm";
  rule.threshold = 0.5;
  engine.add_rule(rule);

  auto tick = [&](std::uint64_t shed, std::uint64_t adm) {
    return engine.evaluate(make_tick(1'000'000'000, 1.0,
                                     {counter_series("shed", shed, 0.0),
                                      counter_series("adm", adm, 0.0)}));
  };
  EXPECT_TRUE(tick(1, 4).empty());        // 0.25 <= 0.5
  EXPECT_TRUE(tick(0, 0).empty());        // no traffic -> no verdict
  const std::vector<Alert> fired = tick(3, 4);  // 0.75 > 0.5
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0].value, 0.75);
}

TEST(SloEngine, BurnRateWindowsDeltasOverWallTime) {
  SloEngine engine;
  SloRule rule;
  rule.name = "rej.burn";
  rule.kind = SloRule::Kind::kBurnRate;
  rule.metric = "rej";
  rule.threshold = 1.0;  // events/s over the window
  rule.window_samples = 2;
  engine.add_rule(rule);

  auto tick = [&](std::uint64_t delta, double dt) {
    return engine.evaluate(
        make_tick(1'000'000'000, dt, {counter_series("rej", delta, 0.0)}));
  };
  EXPECT_TRUE(tick(1, 1.0).empty());  // window burn 1/1 = 1.0, not > 1
  const std::vector<Alert> fired = tick(3, 1.0);  // (1+3)/2 = 2.0 > 1
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0].value, 2.0);
  // Window slides: (3+0)/2 = 1.5 still breaching, stays active, no re-fire.
  EXPECT_TRUE(tick(0, 1.0).empty());
  EXPECT_EQ(engine.active().size(), 1u);
  // (0+0)/2 = 0 -> clears (clear_samples defaults to 1).
  EXPECT_TRUE(tick(0, 1.0).empty());
  EXPECT_TRUE(engine.active().empty());
}

TEST(SloEngine, HistogramQuantileRuleUsesIntervalDeltas) {
  SloEngine engine;
  SloRule rule;
  rule.name = "lat.p99";
  rule.metric = "lat";
  rule.quantile = 0.99;
  rule.threshold = 1.5;
  engine.add_rule(rule);

  auto hist_tick = [&](std::vector<std::uint64_t> bucket_delta) {
    TickSeries s;
    s.name = "lat";
    s.kind = MetricKind::kHistogram;
    s.bounds = {1.0, 2.0};
    s.bucket_delta = std::move(bucket_delta);
    std::uint64_t d = 0;
    for (const std::uint64_t b : s.bucket_delta) d += b;
    s.delta = d;
    s.value = histogram_quantile(s.bounds, s.bucket_delta, 0.99);
    return engine.evaluate(make_tick(1'000'000'000, 1.0, {s}));
  };
  // All mass in (0,1]: p99 <= 1.0, healthy.
  EXPECT_TRUE(hist_tick({10, 0, 0}).empty());
  // Empty interval: no verdict, still healthy.
  EXPECT_TRUE(hist_tick({0, 0, 0}).empty());
  // Overflow-heavy interval: p99 clamps to 2.0 > 1.5, fires.
  EXPECT_EQ(hist_tick({0, 0, 10}).size(), 1u);
}

TEST(SloEngine, DefaultServeRulesCoverEveryShard) {
  const std::vector<SloRule> rules = default_serve_rules(3);
  // Stock set: latency p99 + shed ratio + reject burn + one per shard.
  EXPECT_EQ(rules.size(), 6u);
  int shard_rules = 0;
  for (const SloRule& r : rules) {
    if (r.name.find("shard") != std::string::npos) ++shard_rules;
  }
  EXPECT_EQ(shard_rules, 3);
}

// ---------------------------------------------------------------------------
// Serve-path integration: bit identity and rollback forensics
// ---------------------------------------------------------------------------

struct ServeFixture {
  std::unique_ptr<core::ProjectRuntime> runtime;
  std::string root;

  explicit ServeFixture(const std::string& tag) {
    warehouse::ProjectArchetype a;
    a.name = "serve";
    a.seed = 5;
    a.n_tables = 14;
    a.n_templates = 8;
    a.queries_per_day = 50.0;
    a.stats_coverage = 0.15;
    a.cluster_machines = 24;
    core::RuntimeConfig rc;
    rc.seed = 31;
    runtime = std::make_unique<core::ProjectRuntime>(a, rc);
    runtime->simulate_history(5, 50);
    root = (fs::temp_directory_path() /
            ("loam_recorder_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(root);
    fs::create_directories(root);
  }
  ~ServeFixture() { fs::remove_all(root); }

  serve::ServeConfig config() const {
    serve::ServeConfig cfg;
    cfg.predictor.epochs = 4;
    cfg.predictor.hidden_dim = 16;
    cfg.predictor.embed_dim = 16;
    cfg.predictor.tcn_layers = 2;
    cfg.gate.sample_queries = 6;
    cfg.gate.replay_runs = 2;
    cfg.min_train_examples = 20;
    cfg.bootstrap_candidate_queries = 10;
    cfg.batch_linger_us = 100;
    cfg.bootstrap_from_history = false;
    cfg.bootstrap_train = false;
    cfg.auto_retrain = false;
    cfg.registry_root = root + "/registry";
    cfg.journal_path = root + "/feedback.jnl";
    return cfg;
  }

  warehouse::ExecutionResult execute(const warehouse::Plan& plan,
                                     std::uint64_t seed) const {
    warehouse::FlightingEnv env(runtime->config().cluster,
                                runtime->config().executor, seed);
    return env.replay_once(plan);
  }
};

std::unique_ptr<core::AdaptiveCostPredictor> untrained_model(
    const serve::OptimizerService& service) {
  return std::make_unique<core::AdaptiveCostPredictor>(
      service.encoder().feature_dim(), service.config().predictor);
}

serve::ModelVersionMeta approved_meta() {
  serve::ModelVersionMeta meta;
  meta.approved = true;
  return meta;
}

// The obs house rule, recorder edition: a FlightRecorder actively sampling
// (background thread + SLO evaluation) next to the serve path must leave
// model-path decisions bit-identical to a run with observability fully off.
// The TSan gate re-certifies this suite, so the sampler's concurrent
// registry reads are also proven race-free against serving.
TEST(FlightRecorder, RecorderOnDecisionsBitIdenticalToRecorderOff) {
  ObsGuard guard;
  ServeFixture fx("identity");
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 7, 16);
  ASSERT_GE(queries.size(), 8u);

  // Reference: observability off, no recorder.
  std::vector<serve::ServeDecision> want(queries.size());
  {
    serve::ServeConfig cfg = fx.config();
    cfg.registry_root = fx.root + "/registry_ref";
    cfg.journal_path = fx.root + "/feedback_ref.jnl";
    serve::OptimizerService service(fx.runtime.get(), cfg);
    service.start();
    ASSERT_EQ(
        service.publish_and_swap(untrained_model(service), approved_meta()),
        1);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      want[i] = service.optimize(queries[i]);
      ASSERT_EQ(want[i].model_version, 1);
    }
    service.stop();
  }

  // Same run with metrics on and a started FlightRecorder sampling at 1ms.
  set_metrics_enabled(true);
  FlightRecorderConfig fc;
  fc.recorder.interval_ns = 1'000'000;
  fc.rules = default_serve_rules(1);
  FlightRecorder flight(std::move(fc));
  flight.start();
  {
    serve::ServeConfig cfg = fx.config();
    cfg.registry_root = fx.root + "/registry_rec";
    cfg.journal_path = fx.root + "/feedback_rec.jnl";
    cfg.flight_recorder = &flight;
    serve::OptimizerService service(fx.runtime.get(), cfg);
    service.start();
    ASSERT_EQ(
        service.publish_and_swap(untrained_model(service), approved_meta()),
        1);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const serve::ServeDecision d = service.optimize(queries[i]);
      ASSERT_EQ(d.model_version, 1);
      ASSERT_EQ(d.predicted.size(), want[i].predicted.size());
      for (std::size_t k = 0; k < d.predicted.size(); ++k) {
        EXPECT_EQ(d.predicted[k], want[i].predicted[k]);  // exact doubles
      }
      EXPECT_EQ(d.chosen, want[i].chosen);
      EXPECT_EQ(d.predicted_cost, want[i].predicted_cost);
    }
    service.stop();
  }
  flight.stop();
  EXPECT_GT(flight.recorder().samples(), 0u);
}

// A forced deviance rollback on a sharded service must leave one forensic
// bundle on disk: well-formed JSON carrying the loam.serve metric history,
// the alert state, and the serve state-provider table.
TEST(FlightRecorder, DevianceRollbackWritesWellFormedDumpBundle) {
  ObsGuard guard;
  ServeFixture fx("rollback");
  set_metrics_enabled(true);

  const std::string dump_dir = fx.root + "/dumps";
  fs::create_directories(dump_dir);
  FlightRecorderConfig fc;
  fc.recorder.interval_ns = 5'000'000;
  fc.rules = default_serve_rules(2);
  fc.dump_dir = dump_dir;
  FlightRecorder flight(std::move(fc));
  flight.start();

  serve::ServeConfig cfg = fx.config();
  cfg.num_shards = 2;
  cfg.monitor.window = 8;
  cfg.monitor.min_samples = 3;
  cfg.monitor.max_mean_overrun = 0.5;
  cfg.flight_recorder = &flight;
  serve::OptimizerService service(fx.runtime.get(), cfg);
  service.start();
  // An untrained predictor's unfitted scaler predicts costs near 1 while
  // real executions land orders of magnitude higher: the one-sided log
  // overrun trips the monitor deterministically.
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), approved_meta()),
            1);

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 8, 24);
  std::size_t i = 0;
  while (service.stats().rollbacks == 0 && i < queries.size()) {
    const serve::ServeDecision d = service.optimize(queries[i]);
    service.record_feedback(d, fx.execute(d.generation.plans[d.chosen], 7 + i));
    ++i;
  }
  ASSERT_EQ(service.stats().rollbacks, 1u);

  // The rollback hook wrote a bundle named for its reason.
  EXPECT_GE(flight.dumps_written(), 1u);
  const std::string path = flight.last_dump_path();
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("deviance_rollback"), std::string::npos);
  ASSERT_TRUE(fs::exists(path));

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string bundle = buf.str();
  EXPECT_TRUE(json_well_formed(bundle));
  EXPECT_NE(bundle.find("\"schema\":\"loam.flight.v1\""), std::string::npos);
  EXPECT_NE(bundle.find("\"reason\":\"deviance_rollback\""),
            std::string::npos);
  EXPECT_NE(bundle.find("\"history\""), std::string::npos);
  EXPECT_NE(bundle.find("loam.serve.request_seconds"), std::string::npos);
  EXPECT_NE(bundle.find("loam.deviance.mean_overrun"), std::string::npos);
  // The serve state provider contributed its pacing/per-shard table.
  EXPECT_NE(bundle.find("\"state\""), std::string::npos);
  EXPECT_NE(bundle.find("\"num_shards\":2"), std::string::npos);

  service.stop();
  flight.stop();
}

}  // namespace
}  // namespace loam::obs
