// Batched ranker inference must be a pure throughput optimisation: scoring a
// candidate set with one packed forward pass returns the same numbers as
// scoring plan by plan. Exercised over ragged batch sizes — a single plan,
// a typical top_k set, more-than-top_k, and the empty set — for the adaptive
// predictor, the baseline CostModel default path, and the GBDT project ranker.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/baselines.h"
#include "core/predictor.h"
#include "core/selector.h"

namespace loam::core {
namespace {

nn::Tree make_tree(Rng& rng, int dim) {
  const int n = 1 + static_cast<int>(rng.uniform_int(0, 6));
  nn::Tree t;
  t.features = nn::Mat(n, dim);
  t.left.assign(static_cast<std::size_t>(n), -1);
  t.right.assign(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    if (2 * i + 1 < n) t.left[static_cast<std::size_t>(i)] = 2 * i + 1;
    if (2 * i + 2 < n) t.right[static_cast<std::size_t>(i)] = 2 * i + 2;
    for (int j = 0; j < dim; ++j) {
      t.features.at(i, j) = static_cast<float>(rng.uniform(0.0, 1.0));
    }
  }
  t.root = 0;
  return t;
}

std::vector<TrainingExample> make_training(Rng& rng, int dim, int count) {
  std::vector<TrainingExample> out;
  for (int i = 0; i < count; ++i) {
    TrainingExample ex;
    ex.tree = make_tree(rng, dim);
    double cost = 60.0;
    for (int j = 0; j < dim; ++j) {
      cost += 30.0 * ex.tree.features.at(0, j) * (j + 1);
    }
    ex.cpu_cost = cost;
    out.push_back(std::move(ex));
  }
  return out;
}

class PredictorBatch : public ::testing::Test {
 protected:
  static constexpr int kDim = 8;

  void SetUp() override {
    Rng rng(915);
    train_ = make_training(rng, kDim, 120);
    for (int i = 0; i < 20; ++i) probes_.push_back(make_tree(rng, kDim));
  }

  // Batch sizes from the ISSUE: single plan, top_k, beyond top_k, empty.
  std::vector<std::size_t> ragged_sizes() const { return {1, 5, 9, 0}; }

  void expect_batch_matches(const CostModel& model) const {
    std::size_t cursor = 0;
    for (std::size_t size : ragged_sizes()) {
      std::vector<nn::Tree> batch;
      for (std::size_t i = 0; i < size; ++i) {
        batch.push_back(probes_[(cursor + i) % probes_.size()]);
      }
      cursor += size;
      const std::vector<double> batched = model.predict_batch(batch);
      ASSERT_EQ(batched.size(), batch.size()) << model.name();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const double single = model.predict(batch[i]);
        EXPECT_NEAR(batched[i], single, 1e-9)
            << model.name() << " batch size " << size << " item " << i;
        EXPECT_TRUE(std::isfinite(batched[i]));
      }
    }
  }

  std::vector<TrainingExample> train_;
  std::vector<nn::Tree> probes_;
};

TEST_F(PredictorBatch, AdaptivePredictorBatchedEqualsPerPlan) {
  PredictorConfig cfg;
  cfg.epochs = 6;
  cfg.hidden_dim = 16;
  AdaptiveCostPredictor model(kDim, cfg);
  model.fit(train_, {});
  expect_batch_matches(model);
}

TEST_F(PredictorBatch, EmptyBatchReturnsEmpty) {
  PredictorConfig cfg;
  cfg.epochs = 2;
  AdaptiveCostPredictor model(kDim, cfg);
  model.fit(train_, {});
  EXPECT_TRUE(model.predict_batch({}).empty());
}

TEST_F(PredictorBatch, BatchedScoringIsRepeatable) {
  // Two identical batched calls agree bit-for-bit (the packed forward pass
  // must not depend on leftover layer caches).
  PredictorConfig cfg;
  cfg.epochs = 4;
  AdaptiveCostPredictor model(kDim, cfg);
  model.fit(train_, {});
  std::vector<nn::Tree> batch(probes_.begin(), probes_.begin() + 7);
  const std::vector<double> a = model.predict_batch(batch);
  const std::vector<double> b = model.predict_batch(batch);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(PredictorBatch, TrainingBitIdenticalAcrossThreadCounts) {
  // Sharded data-parallel training is a throughput knob only: minibatches
  // decompose over a FIXED shard count and gradients reduce in shard order,
  // so the fitted weights are bit-identical for every num_threads. Candidate
  // plans are passed so the adversarial (GRL + DomClf) path is exercised too.
  std::vector<std::vector<float>> weights_by_run;
  for (int nt : {1, 2, 8}) {
    PredictorConfig cfg;
    cfg.epochs = 4;
    cfg.hidden_dim = 16;
    cfg.num_threads = nt;
    AdaptiveCostPredictor model(kDim, cfg);
    model.fit(train_, probes_);
    std::vector<float> flat;
    for (const nn::Parameter* p : model.parameters()) {
      flat.insert(flat.end(), p->value.data(),
                  p->value.data() + p->value.size());
    }
    weights_by_run.push_back(std::move(flat));
  }
  ASSERT_EQ(weights_by_run.size(), 3u);
  for (std::size_t run = 1; run < weights_by_run.size(); ++run) {
    ASSERT_EQ(weights_by_run[run].size(), weights_by_run[0].size());
    for (std::size_t i = 0; i < weights_by_run[0].size(); ++i) {
      // EXPECT_EQ on floats: exact bitwise agreement, not a tolerance.
      ASSERT_EQ(weights_by_run[run][i], weights_by_run[0][i])
          << "weight " << i << " differs between num_threads=1 and run " << run;
    }
  }
}

TEST_F(PredictorBatch, BaselineDefaultBatchEqualsPerPlan) {
  // Baselines inherit CostModel::predict_batch's loop-over-predict default;
  // the contract (same values, input order) must hold for them too.
  BaselineConfig cfg;
  cfg.epochs = 6;
  cfg.hidden_dim = 16;
  for (int kind = 0; kind < 3; ++kind) {
    std::unique_ptr<CostModel> model;
    switch (kind) {
      case 0: model = make_transformer_cost_model(kDim, cfg); break;
      case 1: model = make_gcn_cost_model(kDim, cfg); break;
      default: model = make_xgboost_cost_model(kDim, cfg); break;
    }
    model->fit(train_, {});
    expect_batch_matches(*model);
  }
}

TEST(RankerBatch, EstimateBatchEqualsPerRow) {
  Rng rng(771);
  ProjectRanker ranker;
  std::vector<RankerExample> examples;
  const int dim = ranker.featurizer().feature_dim();
  for (int i = 0; i < 80; ++i) {
    RankerExample ex;
    ex.features.resize(static_cast<std::size_t>(dim));
    double target = 0.0;
    for (int j = 0; j < dim; ++j) {
      ex.features[static_cast<std::size_t>(j)] =
          static_cast<float>(rng.uniform(0.0, 1.0));
      target += ex.features[static_cast<std::size_t>(j)];
    }
    ex.improvement_space = target / dim;
    examples.push_back(std::move(ex));
  }
  ranker.fit(examples);
  for (std::size_t size : {std::size_t{1}, std::size_t{6}, std::size_t{0}}) {
    gbdt::FeatureMatrix rows;
    for (std::size_t i = 0; i < size; ++i) {
      rows.push_back(std::vector<float>(examples[i].features.begin(),
                                        examples[i].features.end()));
    }
    const std::vector<double> batched = ranker.estimate_batch(rows);
    ASSERT_EQ(batched.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_NEAR(batched[i], ranker.estimate(rows[i]), 1e-9);
    }
  }
}

}  // namespace
}  // namespace loam::core
