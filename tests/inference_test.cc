// Tests of the environment-inference strategies of Section 5.
#include <gtest/gtest.h>

#include "core/inference.h"

namespace loam::core {
namespace {

using warehouse::EnvFeatures;

warehouse::QueryRecord make_record(double cpu_idle, double work) {
  warehouse::QueryRecord r;
  warehouse::StageExecution s;
  s.stage_id = 0;
  s.env.cpu_idle = cpu_idle;
  s.env.io_wait = 0.05;
  s.env.load5_norm = 1.0 - cpu_idle;
  s.env.mem_usage = 0.5;
  s.work = work;
  r.exec.stages.push_back(s);
  return r;
}

TEST(Inference, StrategyNames) {
  EXPECT_STREQ(env_strategy_name(EnvInferenceStrategy::kRepresentativeMean), "LOAM");
  EXPECT_STREQ(env_strategy_name(EnvInferenceStrategy::kClusterExpected), "LOAM-CE");
  EXPECT_STREQ(env_strategy_name(EnvInferenceStrategy::kClusterInstant), "LOAM-CB");
  EXPECT_STREQ(env_strategy_name(EnvInferenceStrategy::kNoEnv), "LOAM-NL");
}

TEST(Inference, RepresentativeEnvIsWorkWeighted) {
  warehouse::QueryRepository repo;
  repo.log(make_record(0.2, 9.0));  // heavy stage, busy machines
  repo.log(make_record(0.8, 1.0));  // light stage, idle machines
  const EnvFeatures rep = representative_env(repo);
  EXPECT_NEAR(rep.cpu_idle, (0.2 * 9.0 + 0.8 * 1.0) / 10.0, 1e-9);
}

TEST(Inference, RepresentativeEnvEmptyRepository) {
  warehouse::QueryRepository repo;
  const EnvFeatures rep = representative_env(repo);
  // Neutral default.
  EXPECT_DOUBLE_EQ(rep.cpu_idle, 0.5);
}

TEST(Inference, ExpectedClusterEnvAverages) {
  std::vector<EnvFeatures> history;
  EnvFeatures a;
  a.cpu_idle = 0.2;
  EnvFeatures b;
  b.cpu_idle = 0.6;
  history = {a, b};
  EXPECT_NEAR(expected_cluster_env(history).cpu_idle, 0.4, 1e-12);
}

TEST(Inference, SelectEnvDispatch) {
  EnvContext ctx;
  ctx.representative.cpu_idle = 0.11;
  ctx.cluster_expected.cpu_idle = 0.22;
  ctx.cluster_instant.cpu_idle = 0.33;
  EXPECT_DOUBLE_EQ(
      select_env(EnvInferenceStrategy::kRepresentativeMean, ctx).cpu_idle, 0.11);
  EXPECT_DOUBLE_EQ(select_env(EnvInferenceStrategy::kClusterExpected, ctx).cpu_idle,
                   0.22);
  EXPECT_DOUBLE_EQ(select_env(EnvInferenceStrategy::kClusterInstant, ctx).cpu_idle,
                   0.33);
  // kNoEnv yields the neutral vector.
  EXPECT_DOUBLE_EQ(select_env(EnvInferenceStrategy::kNoEnv, ctx).cpu_idle, 0.5);
}

TEST(Inference, BuildContextCombinesSources) {
  warehouse::QueryRepository repo;
  repo.log(make_record(0.3, 1.0));
  std::vector<EnvFeatures> history;
  EnvFeatures h;
  h.cpu_idle = 0.9;
  history = {h};
  warehouse::Cluster cluster(warehouse::ClusterConfig{}, 5);
  const EnvContext ctx = build_env_context(repo, history, cluster);
  EXPECT_NEAR(ctx.representative.cpu_idle, 0.3, 1e-9);
  EXPECT_NEAR(ctx.cluster_expected.cpu_idle, 0.9, 1e-9);
  EXPECT_GT(ctx.cluster_instant.cpu_idle, 0.0);
  EXPECT_LT(ctx.cluster_instant.cpu_idle, 1.0);
}

// The load-balancing property driving LOAM's advantage over cluster-wide
// strategies (Section 7.2.5): representative (machine-level, work-weighted)
// environments are systematically idler than the cluster-wide average,
// because Fuxi schedules onto idle machines.
TEST(Inference, RepresentativeIdlerThanClusterAverage) {
  warehouse::ClusterConfig ccfg;
  ccfg.machines = 48;
  warehouse::Cluster cluster(ccfg, 17);
  cluster.advance(3600.0);
  warehouse::Executor executor(&cluster);
  warehouse::FuxiScheduler scheduler;
  (void)scheduler;
  Rng rng(18);

  // Execute a trivial plan repeatedly and log it, tracking cluster averages.
  warehouse::Plan plan;
  warehouse::PlanNode scan;
  scan.op = warehouse::OpType::kTableScan;
  scan.table_id = 0;
  scan.true_rows = 1e6;
  scan.est_rows = 1e6;
  plan.set_root(plan.add_node(scan));

  warehouse::QueryRepository repo;
  std::vector<EnvFeatures> cluster_history;
  for (int i = 0; i < 40; ++i) {
    cluster.advance(300.0);
    warehouse::QueryRecord r;
    warehouse::Plan copy = plan;
    r.exec = executor.execute(copy, rng);
    repo.log(std::move(r));
    cluster_history.push_back(EnvFeatures::from_load(cluster.cluster_average()));
  }
  const EnvFeatures rep = representative_env(repo);
  const EnvFeatures avg = expected_cluster_env(cluster_history);
  EXPECT_GT(rep.cpu_idle, avg.cpu_idle);
}

}  // namespace
}  // namespace loam::core
