// loam::obs contract tests: registry semantics (gated recording, idempotent
// registration, histogram bucketing), snapshot consistency under concurrent
// writers, span ring-buffer overflow behavior, Chrome-trace JSON
// well-formedness, and the no-perturbation guarantee — enabling metrics and
// tracing must leave trained predictor weights bit-identical.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace loam::obs {
namespace {

// Every test must leave the process-wide flags disabled (other suites in
// this binary assume the default-off state).
struct ObsGuard {
  ~ObsGuard() {
    set_metrics_enabled(false);
    set_tracing_enabled(false);
  }
};

// Minimal structural JSON checker: tokenizes strings (with escapes) and
// verifies bracket balance plus the comma placement rules JSON requires. The
// CI smoke (tools/check.sh) additionally validates exported files with
// python3 -m json.tool; this keeps the property testable without a parser.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false, escaped = false;
  char prev = 0;  // last structural character
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        prev = '"';
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[':
        if (prev == '}' || prev == ']' || prev == '"') return false;
        stack.push_back(c);
        prev = c;
        break;
      case '}': case ']':
        if (stack.empty()) return false;
        if (prev == ',') return false;  // trailing comma
        if (c == '}' && stack.back() != '{') return false;
        if (c == ']' && stack.back() != '[') return false;
        stack.pop_back();
        prev = c;
        break;
      case ',':
        if (prev == ',' || prev == '{' || prev == '[') return false;
        prev = c;
        break;
      case ':': prev = c; break;
      default:
        if (!std::isspace(static_cast<unsigned char>(c))) prev = 'v';
        break;
    }
  }
  return stack.empty() && !in_string;
}

TEST(JsonWriter, NestingEscapingAndNonFinite) {
  JsonWriter w;
  w.begin_object();
  w.kv("plain", "ab");
  w.kv("escaped", "q\"b\\s\nt\tc\x01");
  w.kv("int", -3);
  w.kv("flag", true);
  w.key("nan");
  w.value(std::nan(""));
  w.key("arr");
  w.begin_array();
  w.value(1.5);
  w.null();
  w.begin_object();
  w.end_object();
  w.end_array();
  w.end_object();
  const std::string s = w.str();
  EXPECT_TRUE(json_well_formed(s)) << s;
  EXPECT_NE(s.find("\"escaped\":\"q\\\"b\\\\s\\nt\\tc\\u0001\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"nan\":null"), std::string::npos) << s;
  EXPECT_NE(s.find("\"arr\":[1.5,null,{}]"), std::string::npos) << s;
}

TEST(Registry, DisabledRecordingIsANoOp) {
  ObsGuard guard;
  Registry& reg = Registry::instance();
  Counter* c = reg.counter("test.noop.counter");
  Gauge* g = reg.gauge("test.noop.gauge");
  Histogram* h = reg.histogram("test.noop.hist", {1.0, 2.0});
  c->reset(); g->reset(); h->reset();

  set_metrics_enabled(false);
  c->add(5);
  g->set(3.25);
  h->observe(1.5);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);

  set_metrics_enabled(true);
  c->add(5);
  g->set(3.25);
  h->observe(1.5);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_EQ(g->value(), 3.25);
  EXPECT_EQ(h->count(), 1u);
}

TEST(Registry, RegistrationIsIdempotentAndPointerStable) {
  Registry& reg = Registry::instance();
  Counter* a = reg.counter("test.idem.counter");
  // Register enough other metrics to force any non-stable storage to move.
  for (int i = 0; i < 200; ++i) {
    reg.counter("test.idem.filler." + std::to_string(i));
  }
  EXPECT_EQ(reg.counter("test.idem.counter"), a);
  Histogram* h = reg.histogram("test.idem.hist", {1.0});
  EXPECT_EQ(reg.histogram("test.idem.hist", {99.0}), h);  // bounds fixed by first
  EXPECT_EQ(h->bounds().size(), 1u);
  EXPECT_EQ(h->bounds()[0], 1.0);
}

TEST(Registry, HistogramBucketsAndBoundHelpers) {
  ObsGuard guard;
  Registry& reg = Registry::instance();
  Histogram* h = reg.histogram("test.buckets.hist", {1.0, 10.0, 100.0});
  h->reset();
  set_metrics_enabled(true);
  for (double v : {0.5, 1.0, 5.0, 10.0, 99.0, 1000.0}) h->observe(v);
  // Inclusive upper edges: 1.0 lands in bucket 0, 10.0 in bucket 1.
  EXPECT_EQ(h->bucket_count(0), 2u);   // 0.5, 1.0
  EXPECT_EQ(h->bucket_count(1), 2u);   // 5.0, 10.0
  EXPECT_EQ(h->bucket_count(2), 1u);   // 99.0
  EXPECT_EQ(h->bucket_count(3), 1u);   // 1000.0 -> +inf overflow
  EXPECT_EQ(h->count(), 6u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 5.0 + 10.0 + 99.0 + 1000.0);

  const auto exp = Histogram::exponential_bounds(1.0, 4.0, 3);
  ASSERT_EQ(exp.size(), 3u);
  EXPECT_DOUBLE_EQ(exp[0], 1.0);
  EXPECT_DOUBLE_EQ(exp[1], 4.0);
  EXPECT_DOUBLE_EQ(exp[2], 16.0);
  const auto lin = Histogram::linear_bounds(0.5, 0.25, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[1], 0.75);
}

TEST(Registry, SnapshotSeesConsistentTotalsUnderConcurrentWriters) {
  ObsGuard guard;
  Registry& reg = Registry::instance();
  Counter* c = reg.counter("test.mt.counter");
  Histogram* h = reg.histogram("test.mt.hist", Histogram::exponential_bounds(1.0, 2.0, 6));
  c->reset();
  h->reset();
  set_metrics_enabled(true);

  constexpr int kThreads = 4, kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->add();
        h->observe(static_cast<double>(1 + (t + i) % 40));
      }
    });
  }
  // Snapshots taken mid-flight must be internally sane (monotone count,
  // buckets summing to count at the histogram level is only guaranteed at
  // quiescence; here we check monotonicity and no torn names).
  std::uint64_t last = 0;
  for (int probe = 0; probe < 50; ++probe) {
    const RegistrySnapshot snap = reg.snapshot();
    const MetricSnapshot* mc = snap.find("test.mt.counter");
    ASSERT_NE(mc, nullptr);
    EXPECT_GE(mc->count, last);
    last = mc->count;
  }
  for (auto& w : workers) w.join();

  const RegistrySnapshot snap = reg.snapshot();
  const MetricSnapshot* mc = snap.find("test.mt.counter");
  const MetricSnapshot* mh = snap.find("test.mt.hist");
  ASSERT_NE(mc, nullptr);
  ASSERT_NE(mh, nullptr);
  EXPECT_EQ(mc->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(mh->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : mh->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, mh->count);
  EXPECT_TRUE(json_well_formed(snap.to_json()));
}

TEST(Tracer, SpanRingOverflowIsBoundedAndCounted) {
  ObsGuard guard;
  Tracer& tracer = Tracer::instance();
  tracer.reset();
  set_tracing_enabled(true);
  const std::uint64_t before = tracer.recorded();
  const std::size_t total = Tracer::kRingCapacity + 500;
  for (std::size_t i = 0; i < total; ++i) {
    Span span(Cat::kExplorer, "overflow_span", static_cast<std::int64_t>(i));
  }
  set_tracing_enabled(false);
  EXPECT_EQ(tracer.recorded() - before, total);
  EXPECT_GE(tracer.dropped(), 500u);  // at least the overflow beyond capacity
  const std::vector<TraceEvent> events = tracer.drain();
  EXPECT_LE(events.size(), Tracer::kRingCapacity);
  EXPECT_FALSE(events.empty());
  // Drain keeps the NEWEST events: the last recorded arg must be present.
  bool saw_last = false;
  for (const TraceEvent& e : events) {
    if (e.arg == static_cast<std::int64_t>(total - 1)) saw_last = true;
  }
  EXPECT_TRUE(saw_last);
  tracer.reset();
}

TEST(Tracer, DisabledSpansRecordNothing) {
  ObsGuard guard;
  Tracer& tracer = Tracer::instance();
  tracer.reset();
  set_tracing_enabled(false);
  const std::uint64_t before = tracer.recorded();
  for (int i = 0; i < 100; ++i) {
    Span span(Cat::kGate, "disabled_span");
  }
  EXPECT_EQ(tracer.recorded(), before);
}

TEST(Tracer, ChromeTraceJsonIsWellFormedWithCategories) {
  ObsGuard guard;
  Tracer& tracer = Tracer::instance();
  tracer.reset();
  set_tracing_enabled(true);
  {
    Span a(Cat::kExplorer, "outer", 7);
    Span b(Cat::kPredictor, "inner");
  }
  { Span s(Cat::kGate, "gate_span"); }
  { Span s(Cat::kFuxi, "fuxi_span"); }
  { Span s(Cat::kExecutor, "exec_span"); }
  { Span s(Cat::kFlighting, "flight_span"); }
  set_tracing_enabled(false);

  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  for (const char* cat :
       {"\"explorer\"", "\"predictor\"", "\"gate\"", "\"fuxi\"", "\"executor\"",
        "\"flighting\""}) {
    EXPECT_NE(json.find(cat), std::string::npos) << cat;
  }
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":7}"), std::string::npos);

  // Events drain oldest-first; at equal starts the enclosing span leads.
  const std::vector<TraceEvent> events = tracer.drain();
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
  }
  tracer.reset();
}

TEST(Tracer, ConcurrentRecordingAndDrainingIsSafe) {
  ObsGuard guard;
  Tracer& tracer = Tracer::instance();
  tracer.reset();
  set_tracing_enabled(true);
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        Span span(Cat::kGbdt, "mt_span", i);
      }
    });
  }
  for (int probe = 0; probe < 20; ++probe) {
    const std::vector<TraceEvent> events = tracer.drain();
    for (const TraceEvent& e : events) {
      ASSERT_NE(e.name, nullptr);
      EXPECT_GE(e.dur_ns, 0);
    }
  }
  for (auto& w : writers) w.join();
  set_tracing_enabled(false);
  EXPECT_GE(tracer.recorded(), 15000u);
  tracer.reset();
}

// The acceptance-critical property: turning the full obs stack on must not
// perturb training — instrumentation only reads clocks and bumps atomics,
// never an RNG stream — so fitted weights are bit-identical.
TEST(ObsDeterminism, PredictorWeightsBitIdenticalWithObsEnabled) {
  ObsGuard guard;
  const int dim = 12;
  Rng rng(42);
  std::vector<core::TrainingExample> train;
  std::vector<nn::Tree> candidates;
  for (int i = 0; i < 24; ++i) {
    core::TrainingExample ex;
    const int nodes = 3;
    ex.tree.features = nn::Mat(nodes, dim);
    for (int r = 0; r < nodes; ++r) {
      for (int c = 0; c < dim; ++c) {
        ex.tree.features.at(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
    }
    ex.tree.left = {1, -1, -1};
    ex.tree.right = {2, -1, -1};
    ex.cpu_cost = 50.0 + 10.0 * rng.uniform(0.0, 1.0);
    if (i % 4 == 0) candidates.push_back(ex.tree);
    train.push_back(std::move(ex));
  }

  auto fit_weights = [&](bool obs_on) {
    set_metrics_enabled(obs_on);
    set_tracing_enabled(obs_on);
    core::PredictorConfig cfg;
    cfg.epochs = 4;
    cfg.hidden_dim = 16;
    cfg.embed_dim = 8;
    core::AdaptiveCostPredictor model(dim, cfg);
    model.fit(train, candidates);
    set_metrics_enabled(false);
    set_tracing_enabled(false);
    std::vector<float> weights;
    for (const nn::Parameter* p : model.parameters()) {
      weights.insert(weights.end(), p->value.data(),
                     p->value.data() + p->value.size());
    }
    return weights;
  };

  const std::vector<float> off = fit_weights(false);
  const std::vector<float> on = fit_weights(true);
  ASSERT_EQ(off.size(), on.size());
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(std::memcmp(off.data(), on.data(), off.size() * sizeof(float)), 0);
  Tracer::instance().reset();
}

}  // namespace
}  // namespace loam::obs
