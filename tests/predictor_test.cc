// Tests of the adaptive cost predictor: regression quality, the adversarial
// domain-adaptation objective, the GRL schedule, and the CostModel contract
// shared with the baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.h"
#include "core/predictor.h"

namespace loam::core {
namespace {

// Synthetic "plans": small trees whose cost is a deterministic function of
// their features, letting us test learning in isolation from the warehouse.
struct SyntheticData {
  std::vector<TrainingExample> train;
  std::vector<nn::Tree> candidates;
  std::vector<TrainingExample> test;

  static nn::Tree make_tree(Rng& rng, int dim, double* cost_out, bool shifted) {
    const int n = 3 + static_cast<int>(rng.uniform_int(0, 4));
    nn::Tree t;
    t.features = nn::Mat(n, dim);
    t.left.assign(static_cast<std::size_t>(n), -1);
    t.right.assign(static_cast<std::size_t>(n), -1);
    double cost = 50.0;
    for (int i = 0; i < n; ++i) {
      if (2 * i + 1 < n) t.left[static_cast<std::size_t>(i)] = 2 * i + 1;
      if (2 * i + 2 < n) t.right[static_cast<std::size_t>(i)] = 2 * i + 2;
      for (int j = 0; j < 4; ++j) {
        const float v = static_cast<float>(rng.uniform(0.0, 1.0));
        t.features.at(i, j) = v;
        cost += 40.0 * v * (j + 1);
      }
      if (shifted && i == 0) {
        // Candidate domain: an indicator feature on the root that never
        // appears in the training distribution (mirrors an op type only the
        // steering knobs produce).
        t.features.at(i, dim - 1) = 1.0f;
      }
    }
    t.root = 0;
    *cost_out = cost;
    return t;
  }

  explicit SyntheticData(int dim = 8, int n_train = 300) {
    Rng rng(404);
    for (int i = 0; i < n_train; ++i) {
      TrainingExample ex;
      double cost = 0.0;
      ex.tree = make_tree(rng, dim, &cost, false);
      ex.cpu_cost = cost * rng.lognormal(0.0, 0.05);
      train.push_back(std::move(ex));
    }
    for (int i = 0; i < 60; ++i) {
      double cost = 0.0;
      candidates.push_back(make_tree(rng, dim, &cost, true));
    }
    for (int i = 0; i < 60; ++i) {
      TrainingExample ex;
      double cost = 0.0;
      ex.tree = make_tree(rng, dim, &cost, false);
      ex.cpu_cost = cost;
      test.push_back(std::move(ex));
    }
  }
};

TEST(LogCostScalerTest, RoundTrip) {
  LogCostScaler s;
  std::vector<TrainingExample> examples;
  for (double c : {100.0, 1000.0, 10000.0, 100000.0}) {
    TrainingExample e;
    e.cpu_cost = c;
    examples.push_back(e);
  }
  s.fit(examples);
  for (double c : {150.0, 5000.0, 80000.0}) {
    EXPECT_NEAR(s.to_cost(s.to_z(c)), c, c * 1e-3);
  }
  // z of the geometric center is ~0.
  EXPECT_NEAR(s.to_z(std::exp(s.mu) - 1.0), 0.0, 1e-6);
}

TEST(AdaptiveCostPredictor, LearnsSyntheticCostFunction) {
  SyntheticData data;
  PredictorConfig cfg;
  cfg.epochs = 30;
  cfg.hidden_dim = 24;
  cfg.tcn_layers = 2;
  AdaptiveCostPredictor model(8, cfg);
  model.fit(data.train, data.candidates);

  // Held-out relative error should be small.
  double rel_err = 0.0;
  for (const TrainingExample& ex : data.test) {
    rel_err += std::abs(model.predict(ex.tree) - ex.cpu_cost) / ex.cpu_cost;
  }
  rel_err /= static_cast<double>(data.test.size());
  EXPECT_LT(rel_err, 0.25);
}

TEST(AdaptiveCostPredictor, RankingOnHeldOutPlans) {
  SyntheticData data;
  PredictorConfig cfg;
  cfg.epochs = 30;
  cfg.hidden_dim = 24;
  AdaptiveCostPredictor model(8, cfg);
  model.fit(data.train, data.candidates);
  // Pairwise ranking accuracy on test plans with >= 2x cost separation.
  int correct = 0, total = 0;
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    for (std::size_t j = i + 1; j < data.test.size(); ++j) {
      const double ci = data.test[i].cpu_cost, cj = data.test[j].cpu_cost;
      if (std::max(ci, cj) < 2.0 * std::min(ci, cj)) continue;
      ++total;
      const bool truth = ci < cj;
      const bool pred = model.predict(data.test[i].tree) < model.predict(data.test[j].tree);
      correct += truth == pred;
    }
  }
  ASSERT_GT(total, 20);
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(AdaptiveCostPredictor, AdversarialTrainingAlignsDomains) {
  SyntheticData data;
  PredictorConfig cfg;
  cfg.epochs = 30;
  cfg.hidden_dim = 24;
  AdaptiveCostPredictor adaptive(8, cfg);
  adaptive.fit(data.train, data.candidates);
  // After adversarial training the domain classifier should sit well below
  // perfect separation (embeddings pushed toward domain invariance).
  EXPECT_LT(adaptive.diagnostics().final_domain_accuracy, 0.9);

  // And candidate-domain predictions should not explode: each candidate's
  // predicted cost stays within a multiplicative band of the training range.
  double max_cost = 0.0, min_cost = 1e300;
  for (const auto& ex : data.train) {
    max_cost = std::max(max_cost, ex.cpu_cost);
    min_cost = std::min(min_cost, ex.cpu_cost);
  }
  for (const nn::Tree& t : data.candidates) {
    EXPECT_LT(adaptive.predict(t), 4.0 * max_cost);
    EXPECT_GT(adaptive.predict(t), 0.1 * min_cost);
  }
}

TEST(AdaptiveCostPredictor, NaVariantSkipsDomainObjective) {
  SyntheticData data;
  PredictorConfig cfg;
  cfg.epochs = 8;
  cfg.adversarial = false;
  AdaptiveCostPredictor na(8, cfg);
  na.fit(data.train, data.candidates);
  EXPECT_EQ(na.name(), "LOAM-NA");
  EXPECT_EQ(na.diagnostics().final_domain_accuracy, 0.0);  // never evaluated
  PredictorConfig acfg = cfg;
  acfg.adversarial = true;
  AdaptiveCostPredictor full(8, acfg);
  EXPECT_EQ(full.name(), "LOAM");
}

TEST(AdaptiveCostPredictor, DeterministicForFixedSeed) {
  SyntheticData data(8, 80);
  PredictorConfig cfg;
  cfg.epochs = 4;
  AdaptiveCostPredictor a(8, cfg), b(8, cfg);
  a.fit(data.train, data.candidates);
  b.fit(data.train, data.candidates);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.predict(data.test[static_cast<std::size_t>(i)].tree),
                     b.predict(data.test[static_cast<std::size_t>(i)].tree));
  }
}

TEST(AdaptiveCostPredictor, ModelBytesReflectArchitecture) {
  PredictorConfig small;
  small.hidden_dim = 16;
  small.embed_dim = 8;
  PredictorConfig large;
  large.hidden_dim = 64;
  large.embed_dim = 32;
  AdaptiveCostPredictor a(50, small), b(50, large);
  EXPECT_GT(b.model_bytes(), a.model_bytes());
  EXPECT_GT(a.model_bytes(), 1000u);
}

TEST(AdaptiveCostPredictor, EmbeddingHasConfiguredDim) {
  SyntheticData data(8, 50);
  PredictorConfig cfg;
  cfg.embed_dim = 12;
  cfg.epochs = 2;
  AdaptiveCostPredictor model(8, cfg);
  model.fit(data.train, data.candidates);
  EXPECT_EQ(model.embed(data.test[0].tree).size(), 12u);
  const double p = model.domain_probability(data.test[0].tree);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

// ---------------------------------------------------------------------------
// Baselines obey the same CostModel contract.
// ---------------------------------------------------------------------------

class BaselineContract : public ::testing::TestWithParam<int> {};

TEST_P(BaselineContract, LearnsSyntheticCostFunction) {
  SyntheticData data;
  BaselineConfig cfg;
  cfg.epochs = 30;
  cfg.hidden_dim = 24;
  std::unique_ptr<CostModel> model;
  switch (GetParam()) {
    case 0: model = make_transformer_cost_model(8, cfg); break;
    case 1: model = make_gcn_cost_model(8, cfg); break;
    default: model = make_xgboost_cost_model(8, cfg); break;
  }
  model->fit(data.train, data.candidates);
  double rel_err = 0.0;
  for (const TrainingExample& ex : data.test) {
    rel_err += std::abs(model->predict(ex.tree) - ex.cpu_cost) / ex.cpu_cost;
  }
  rel_err /= static_cast<double>(data.test.size());
  EXPECT_LT(rel_err, 0.4) << model->name();
  EXPECT_GT(model->model_bytes(), 0u);
  EXPECT_FALSE(model->name().empty());
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineContract, ::testing::Values(0, 1, 2));

TEST(PooledFeatures, MeanMaxAndSize) {
  nn::Tree t;
  t.features = nn::Mat(2, 3);
  t.features.at(0, 0) = 1.0f;
  t.features.at(1, 0) = 3.0f;
  t.features.at(0, 2) = -2.0f;
  t.left = {-1, -1};
  t.right = {-1, -1};
  const std::vector<float> pooled = pool_tree_features(t);
  ASSERT_EQ(pooled.size(), 7u);
  EXPECT_FLOAT_EQ(pooled[0], 2.0f);   // mean of feature 0
  EXPECT_FLOAT_EQ(pooled[3], 3.0f);   // max of feature 0
  EXPECT_FLOAT_EQ(pooled[2], -1.0f);  // mean of feature 2
  EXPECT_FLOAT_EQ(pooled[6], std::log1p(2.0f));
}

}  // namespace
}  // namespace loam::core
