// Tests of the project selector: Filter rules R1-R3, the Ranker featurizer
// and model, and the ranking metrics with their closed-form Random baselines
// (Section 6, Appendix D & E.2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/selector.h"
#include "util/rng.h"

namespace loam::core {
namespace {

TEST(FilterRules, SummaryMetrics) {
  WorkloadSummary s;
  s.queries_per_day = {100, 110, 121};
  s.stable_table_ratio = 0.5;
  EXPECT_NEAR(s.n_query(), (100 + 110 + 121) / 3.0, 1e-9);
  // Day-over-day ratios: 110/100 = 1.1 and 121/110 = 1.1.
  EXPECT_NEAR(s.query_inc_ratio(), 1.1, 0.01);
  // Degenerate summaries behave sanely.
  WorkloadSummary empty;
  EXPECT_DOUBLE_EQ(empty.n_query(), 0.0);
  EXPECT_DOUBLE_EQ(empty.query_inc_ratio(), 1.0);
}

TEST(FilterRules, DefaultThresholdDerivation) {
  const FilterThresholds t = FilterThresholds::make_default();
  // r is the smallest decay ratio at which a volume-floor project still
  // accumulates the training target within 30 days.
  double total = 0.0, term = t.n0;
  for (int d = 0; d < 30; ++d) {
    total += term;
    term *= t.r;
  }
  EXPECT_NEAR(total, t.train_target, 1.0);
  // Stable workloads must pass R2.
  EXPECT_LT(t.r, 1.0);
  WorkloadSummary stable;
  stable.queries_per_day = {200, 200, 200};
  stable.stable_table_ratio = 1.0;
  EXPECT_TRUE(apply_filter(stable, t).pass);
}

TEST(FilterRules, AllRulesMustPass) {
  FilterThresholds t;
  t.n0 = 100;
  t.r = 1.0;
  t.theta = 0.2;
  WorkloadSummary good;
  good.queries_per_day = {120, 120, 130};
  good.stable_table_ratio = 0.9;
  EXPECT_TRUE(apply_filter(good, t).pass);

  WorkloadSummary low_volume = good;
  low_volume.queries_per_day = {10, 12, 11};
  const FilterDecision d1 = apply_filter(low_volume, t);
  EXPECT_FALSE(d1.pass);
  EXPECT_FALSE(d1.r1);

  WorkloadSummary shrinking = good;
  shrinking.queries_per_day = {300, 150, 75};
  const FilterDecision d2 = apply_filter(shrinking, t);
  EXPECT_FALSE(d2.r2);
  EXPECT_FALSE(d2.pass);

  WorkloadSummary churny = good;
  churny.stable_table_ratio = 0.05;
  const FilterDecision d3 = apply_filter(churny, t);
  EXPECT_FALSE(d3.r3);
  EXPECT_FALSE(d3.pass);
}

TEST(RankerFeatures, DimensionAndRanges) {
  RankerFeaturizer f;
  EXPECT_EQ(f.feature_dim(), 1 + 48 + 3 + 1);
  warehouse::Catalog catalog;
  warehouse::Table t;
  t.name = "t";
  t.row_count = 100000;
  warehouse::Column c;
  c.name = "c0";
  c.ndv = 10;
  t.columns = {c, c};
  const int id = catalog.add_table(t);

  warehouse::Plan plan;
  warehouse::PlanNode scan;
  scan.op = warehouse::OpType::kTableScan;
  scan.table_id = id;
  const int s = plan.add_node(scan);
  warehouse::PlanNode sink;
  sink.op = warehouse::OpType::kSink;
  sink.left = s;
  plan.set_root(plan.add_node(sink));

  const std::vector<float> feat = f.featurize(plan, catalog, 5000.0);
  ASSERT_EQ(static_cast<int>(feat.size()), f.feature_dim());
  for (float v : feat) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 4.0f);
  }
  // Structural count feature reflects two operators.
  EXPECT_NEAR(feat[0], std::log1p(2.0) / std::log(64.0), 1e-6);
}

TEST(Ranker, LearnsSyntheticImprovementSignal) {
  // Synthetic: improvement space is a function of one pattern bucket value.
  Rng rng(8);
  RankerFeaturizer f;
  std::vector<RankerExample> train;
  for (int i = 0; i < 400; ++i) {
    RankerExample e;
    e.features.assign(static_cast<std::size_t>(f.feature_dim()), 0.0f);
    const float x = static_cast<float>(rng.uniform(0.0, 1.0));
    e.features[5] = x;
    e.features[20] = static_cast<float>(rng.uniform(0.0, 1.0));  // noise
    e.improvement_space = 0.4 * x + 0.02;
    train.push_back(std::move(e));
  }
  ProjectRanker ranker;
  ranker.fit(train);
  EXPECT_TRUE(ranker.trained());
  std::vector<float> lo(static_cast<std::size_t>(f.feature_dim()), 0.0f);
  std::vector<float> hi = lo;
  lo[5] = 0.1f;
  hi[5] = 0.9f;
  EXPECT_GT(ranker.estimate(hi), ranker.estimate(lo) + 0.1);
}

TEST(Ranker, PeriodicUpdateFoldsInNewEvaluations) {
  // Section 6: new (P_d, D(M_d)) pairs from deployed projects periodically
  // refine the Ranker. Start with data covering only half the signal range;
  // the update supplies the other half and predictions must improve there.
  Rng rng(9);
  RankerFeaturizer f;
  auto make = [&](double x_lo, double x_hi, int n) {
    std::vector<RankerExample> out;
    for (int i = 0; i < n; ++i) {
      RankerExample e;
      e.features.assign(static_cast<std::size_t>(f.feature_dim()), 0.0f);
      const double x = rng.uniform(x_lo, x_hi);
      e.features[7] = static_cast<float>(x);
      e.improvement_space = 0.5 * x;
      out.push_back(std::move(e));
    }
    return out;
  };
  ProjectRanker ranker;
  ranker.fit(make(0.0, 0.4, 200));
  EXPECT_EQ(ranker.training_corpus_size(), 200u);

  std::vector<float> probe(static_cast<std::size_t>(f.feature_dim()), 0.0f);
  probe[7] = 0.9f;
  const double before = std::abs(ranker.estimate(probe) - 0.45);
  ranker.update(make(0.4, 1.0, 200));
  EXPECT_EQ(ranker.training_corpus_size(), 400u);
  const double after = std::abs(ranker.estimate(probe) - 0.45);
  EXPECT_LT(after, before);
  EXPECT_LT(after, 0.1);
}

TEST(Metrics, RecallAtBasics) {
  const std::vector<double> truth = {0.9, 0.1, 0.5, 0.3};
  // Perfect scores -> perfect recall at every k.
  EXPECT_DOUBLE_EQ(recall_at(truth, truth, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(recall_at(truth, truth, 2, 2), 1.0);
  // Inverted scores: top-1 picks the worst project.
  const std::vector<double> inverted = {0.1, 0.9, 0.5, 0.7};
  EXPECT_DOUBLE_EQ(recall_at(inverted, truth, 1, 1), 0.0);
  // k covering everything recalls everything.
  EXPECT_DOUBLE_EQ(recall_at(inverted, truth, 4, 2), 1.0);
}

TEST(Metrics, NdcgBasics) {
  const std::vector<double> truth = {1.0, 0.2, 0.6};
  EXPECT_NEAR(ndcg_at(truth, truth, 3), 1.0, 1e-12);
  const std::vector<double> inverted = {0.2, 1.0, 0.6};
  const double n = ndcg_at(inverted, truth, 3);
  EXPECT_GT(n, 0.0);
  EXPECT_LT(n, 1.0);
}

TEST(Metrics, RandomExpectationsMatchSimulation) {
  // Appendix E.2's closed forms vs. a brute-force random-permutation average.
  Rng rng(11);
  std::vector<double> truth;
  for (int i = 0; i < 10; ++i) truth.push_back(rng.uniform(0.0, 1.0));
  const int k = 3;

  double recall_acc = 0.0, ndcg_acc = 0.0;
  const int trials = 20000;
  std::vector<double> scores(truth.size());
  for (int t = 0; t < trials; ++t) {
    // Random ranking = random scores.
    for (double& s : scores) s = rng.uniform(0.0, 1.0);
    recall_acc += recall_at(scores, truth, k, k);
    ndcg_acc += ndcg_at(scores, truth, k);
  }
  EXPECT_NEAR(recall_acc / trials,
              expected_random_recall(k, static_cast<int>(truth.size())), 0.01);
  EXPECT_NEAR(ndcg_acc / trials, expected_random_ndcg(truth, k), 0.01);
}

TEST(Metrics, RandomRecallIndependentOfN) {
  EXPECT_DOUBLE_EQ(expected_random_recall(3, 15), 0.2);
  EXPECT_DOUBLE_EQ(expected_random_recall(5, 15), expected_random_recall(5, 15));
  EXPECT_DOUBLE_EQ(expected_random_recall(15, 15), 1.0);
}

}  // namespace
}  // namespace loam::core
