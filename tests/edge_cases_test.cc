// Edge-case and boundary-behaviour tests across modules: empty inputs,
// degenerate shapes, closed-form branch coverage.
#include <gtest/gtest.h>

#include <cmath>

#include "core/deviance.h"
#include "nn/mat.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "warehouse/cluster.h"
#include "warehouse/plan.h"
#include "warehouse/stages.h"

namespace loam {
namespace {

TEST(RngEdge, ZipfUnitSkewClosedForm) {
  // s == 1 takes the dedicated inverse-CDF branch.
  Rng rng(2);
  long long low_ranks = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const auto v = rng.zipf(1000, 1.0);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 1000);
    if (v <= 10) ++low_ranks;
  }
  // Under Zipf(1), P(rank <= 10) = log(11)/log(1001) ~= 0.35.
  EXPECT_NEAR(static_cast<double>(low_ranks) / draws, 0.35, 0.05);
}

TEST(RngEdge, ZipfSingleItem) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.zipf(1, 2.0), 1);
}

TEST(RngEdge, LognormalMomentsMatchTheory) {
  Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.lognormal(1.0, 0.5));
  const double theory_mean = std::exp(1.0 + 0.125);
  EXPECT_NEAR(mean(xs), theory_mean, 0.03 * theory_mean);
}

TEST(StatsEdge, EmptyAndSingletonInputs) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(relative_stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(mean(one), 5.0);
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
  EXPECT_DOUBLE_EQ(percentile(one, 99.0), 5.0);
}

TEST(StatsEdge, PearsonDegenerateInputs) {
  std::vector<double> flat = {1.0, 1.0, 1.0};
  std::vector<double> rising = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(flat, rising), 0.0);
  EXPECT_DOUBLE_EQ(pearson_correlation({}, {}), 0.0);
  std::vector<double> mismatched = {1.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(mismatched, rising), 0.0);
}

TEST(StatsEdge, PhiInverseRejectsBoundaries) {
  EXPECT_THROW(phi_inverse(0.0), std::invalid_argument);
  EXPECT_THROW(phi_inverse(1.0), std::invalid_argument);
  EXPECT_THROW(phi_inverse(-0.5), std::invalid_argument);
}

TEST(StatsEdge, LogNormalVarianceFormula) {
  LogNormal d{2.0, 0.6};
  const double s2 = 0.36;
  EXPECT_NEAR(d.variance(), (std::exp(s2) - 1.0) * std::exp(4.0 + s2), 1e-9);
}

TEST(StatsEdge, MleRejectsInvalidSamples) {
  EXPECT_THROW(fit_lognormal_mle({}), std::invalid_argument);
  std::vector<double> with_zero = {1.0, 0.0, 2.0};
  EXPECT_THROW(fit_lognormal_mle(with_zero), std::invalid_argument);
}

TEST(StatsEdge, IntegrateOddIntervalsAutoCorrected) {
  // Simpson requires an even interval count; odd requests are rounded up.
  const double v = integrate([](double x) { return x; }, 0.0, 2.0, 7);
  EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(StatsEdge, KsEmptySample) {
  const KsResult r = ks_test_lognormal({}, LogNormal{0.0, 1.0});
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
}

TEST(TablePrinterEdge, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only-one"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("only-one"), std::string::npos);
  // Three separator columns rendered.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TablePrinterEdge, BarLineClamping) {
  // Values beyond the max fill the whole bar; zero max yields an empty bar.
  const std::string full = bar_line("x", 10.0, 5.0, 8);
  EXPECT_NE(full.find("########"), std::string::npos);
  const std::string empty = bar_line("x", 1.0, 0.0, 8);
  EXPECT_NE(empty.find("........"), std::string::npos);
  EXPECT_EQ(TablePrinter::fmt_int(-1234567), "-1,234,567");
}

TEST(MatEdge, EmptyAndScaling) {
  nn::Mat m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  nn::Mat a(2, 2);
  a.fill(3.0f);
  a.scale_inplace(-0.5f);
  EXPECT_FLOAT_EQ(a.at(1, 1), -1.5f);
  EXPECT_NEAR(a.l2_norm(), std::sqrt(4 * 1.5 * 1.5), 1e-6);
  nn::Mat b(2, 2);
  b.fill(1.0f);
  a.add_inplace(b);
  EXPECT_FLOAT_EQ(a.at(0, 0), -0.5f);
}

TEST(PlanEdge, EmptyPlanBehaves) {
  warehouse::Plan p;
  EXPECT_EQ(p.root(), -1);
  EXPECT_TRUE(p.postorder().empty());
  EXPECT_TRUE(p.parent_child_patterns().empty());
  EXPECT_TRUE(p.to_string().empty());
}

TEST(StagesEdge, EmptyPlanYieldsEmptyGraph) {
  warehouse::Plan p;
  const warehouse::StageGraph g = warehouse::decompose_into_stages(p);
  EXPECT_EQ(g.stage_count(), 0);
  EXPECT_TRUE(g.topological_order().empty());
}

TEST(ClusterEdge, EnvAverageEmptyIsNeutral) {
  const warehouse::EnvFeatures avg = warehouse::EnvFeatures::average({});
  EXPECT_DOUBLE_EQ(avg.cpu_idle, 0.5);
  EXPECT_DOUBLE_EQ(avg.io_wait, 0.05);
}

TEST(DevianceEdge, EmpiricalHelpersOnEmptyInput) {
  EXPECT_DOUBLE_EQ(core::empirical_oracle_cost({}), 0.0);
  EXPECT_DOUBLE_EQ(core::empirical_expected_deviance({}, 0), 0.0);
}

TEST(DevianceEdge, IdenticalCandidatesGiveEqualDeviance) {
  const std::vector<LogNormal> same = {{3.0, 0.4}, {3.0, 0.4}, {3.0, 0.4}};
  const double d0 = core::expected_deviance(same, 0);
  const double d1 = core::expected_deviance(same, 1);
  EXPECT_NEAR(d0, d1, 0.02 * same[0].mean());
  EXPECT_GT(d0, 0.0);  // intrinsic: even ties carry realization deviance
}

}  // namespace
}  // namespace loam
