// Tests of the native cost-based optimizer: join ordering regimes, physical
// operator selection under the steering flags, exchange placement, and the
// stats-missing degradations of Section 2.1.
#include <gtest/gtest.h>

#include <set>

#include "warehouse/native_optimizer.h"

namespace loam::warehouse {
namespace {

class OptimizerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [&](const std::string& name, long long rows) {
      Table t;
      t.name = name;
      t.row_count = rows;
      t.num_partitions = std::max(1, static_cast<int>(rows / 200000) + 1);
      for (int c = 0; c < 6; ++c) {
        Column col;
        col.name = "c" + std::to_string(c);
        col.ndv = c == 1 ? rows : std::max<long long>(2, rows / 100);
        t.columns.push_back(col);
      }
      return catalog.add_table(t);
    };
    fact = add("fact", 40000000);
    mid = add("mid", 500000);
    dim = add("dim", 2000);

    // Chain: fact -- mid -- dim.
    JoinEdge e1;
    e1.left_table = fact;
    e1.right_table = mid;
    e1.left_column = 2;
    e1.right_column = 1;
    JoinEdge e2;
    e2.left_table = mid;
    e2.right_table = dim;
    e2.left_column = 3;
    e2.right_column = 1;
    query.tables = {fact, mid, dim};
    query.joins = {e1, e2};
    Predicate p;
    p.table_id = fact;
    p.column = 2;
    p.fns = {FilterFn::kEq};
    p.selectivity = 0.05;
    query.predicates = {p};
  }

  void give_fresh_stats() {
    for (int id : {fact, mid, dim}) {
      TableStats s;
      s.available = true;
      s.observed_rows = catalog.table(id).row_count;
      s.ndv_drift = 1.0;
      catalog.set_stats(id, s);
    }
  }

  static std::set<OpType> op_set(const Plan& plan) {
    std::set<OpType> out;
    for (const PlanNode& n : plan.nodes()) out.insert(n.op);
    return out;
  }

  static int count_op(const Plan& plan, OpType op) {
    int n = 0;
    for (const PlanNode& node : plan.nodes()) n += node.op == op;
    return n;
  }

  Catalog catalog;
  Query query;
  int fact = -1, mid = -1, dim = -1;
};

TEST_F(OptimizerFixture, ProducesWellFormedAnnotatedPlan) {
  NativeOptimizer opt(catalog);
  Plan plan = opt.optimize(query);
  ASSERT_GE(plan.root(), 0);
  EXPECT_EQ(plan.node(plan.root()).op, OpType::kSink);
  // Every table scanned exactly once.
  EXPECT_EQ(count_op(plan, OpType::kTableScan), 3);
  // Two joins for three tables.
  int joins = 0;
  for (const PlanNode& n : plan.nodes()) joins += is_join(n.op);
  EXPECT_EQ(joins, 2);
  // All nodes annotated.
  for (int id : plan.postorder()) {
    EXPECT_GE(plan.node(id).true_rows, 1.0);
    EXPECT_GE(plan.node(id).est_rows, 1.0);
  }
}

TEST_F(OptimizerFixture, ReorderingDisabledWithoutStats) {
  NativeOptimizer opt(catalog);
  EXPECT_FALSE(opt.reordering_enabled(query));
  give_fresh_stats();
  EXPECT_TRUE(opt.reordering_enabled(query));
}

TEST_F(OptimizerFixture, DpOrderingBeatsSyntacticOnEstimates) {
  give_fresh_stats();
  NativeOptimizer opt(catalog);
  // Default (stats fresh): DP ordering.
  Plan dp_plan = opt.optimize(query);
  // Forced-syntactic comparison: strip stats so the FROM order (fact first)
  // is used verbatim.
  for (int id : {fact, mid, dim}) {
    TableStats s;
    s.available = false;
    s.observed_rows = catalog.table(id).row_count;
    catalog.set_stats(id, s);
  }
  Plan syn_plan = opt.optimize(query);
  EXPECT_LE(opt.rough_cost(dp_plan), opt.rough_cost(syn_plan) * 1.001);
}

TEST_F(OptimizerFixture, ForceReorderOverridesMissingStats) {
  NativeOptimizer opt(catalog);
  PlannerKnobs forced;
  forced.force_reorder = true;
  Plan forced_plan = opt.optimize(query, forced);
  Plan default_plan = opt.optimize(query);
  // The plans must differ structurally (fact-first syntactic order vs
  // greedy/DP smallest-first).
  EXPECT_NE(forced_plan.signature(), default_plan.signature());
}

TEST_F(OptimizerFixture, BroadcastRequiresStatsOnBuildSide) {
  NativeOptimizer opt(catalog);
  // Without stats, the default (broadcast enabled) must not broadcast.
  Plan no_stats = opt.optimize(query);
  EXPECT_EQ(count_op(no_stats, OpType::kBroadcastHashJoin), 0);
  give_fresh_stats();
  Plan with_stats = opt.optimize(query);
  EXPECT_GT(count_op(with_stats, OpType::kBroadcastHashJoin), 0);
}

TEST_F(OptimizerFixture, BroadcastFlagOffDisablesBroadcast) {
  give_fresh_stats();
  NativeOptimizer opt(catalog);
  PlannerKnobs knobs;
  knobs.flags.set(Flag::kEnableBroadcastJoin, false);
  Plan plan = opt.optimize(query, knobs);
  EXPECT_EQ(count_op(plan, OpType::kBroadcastHashJoin), 0);
  EXPECT_GT(count_op(plan, OpType::kExchange), 0);
}

TEST_F(OptimizerFixture, MergeJoinFlagProducesSortMergePipeline) {
  NativeOptimizer opt(catalog);
  PlannerKnobs knobs;
  knobs.flags.set(Flag::kPreferHashJoin, false);
  knobs.flags.set(Flag::kMergeJoinForSorted, true);
  knobs.flags.set(Flag::kEnableBroadcastJoin, false);
  Plan plan = opt.optimize(query, knobs);
  EXPECT_GT(count_op(plan, OpType::kMergeJoin), 0);
  EXPECT_GT(count_op(plan, OpType::kSort), 0);
  EXPECT_EQ(count_op(plan, OpType::kHashJoin), 0);
}

TEST_F(OptimizerFixture, FilterPushdownPlacesCalcAboveScan) {
  NativeOptimizer opt(catalog);
  Plan pushed = opt.optimize(query);  // defaults push down
  EXPECT_GT(count_op(pushed, OpType::kCalc), 0);
  EXPECT_EQ(count_op(pushed, OpType::kFilter), 0);

  PlannerKnobs late;
  late.flags.set(Flag::kAggressiveFilterPushdown, false);
  Plan unpushed = opt.optimize(query, late);
  EXPECT_EQ(count_op(unpushed, OpType::kCalc), 0);
  EXPECT_GT(count_op(unpushed, OpType::kFilter), 0);
  // Late filtering inflates intermediate cardinalities on the true face.
  double pushed_join_rows = 0.0, unpushed_join_rows = 0.0;
  for (const PlanNode& n : pushed.nodes()) {
    if (is_join(n.op)) pushed_join_rows += n.true_rows;
  }
  for (const PlanNode& n : unpushed.nodes()) {
    if (is_join(n.op)) unpushed_join_rows += n.true_rows;
  }
  EXPECT_GT(unpushed_join_rows, pushed_join_rows);
}

TEST_F(OptimizerFixture, PartialAggregationInsertsLocalAggregate) {
  Aggregation agg;
  agg.fn = AggFn::kSum;
  agg.table_id = fact;
  agg.column = 3;
  agg.group_by = {{dim, 2}};
  query.aggregation = agg;
  NativeOptimizer opt(catalog);
  Plan plain = opt.optimize(query);
  EXPECT_EQ(count_op(plain, OpType::kLocalHashAggregate), 0);
  EXPECT_GT(count_op(plain, OpType::kHashAggregate) +
                count_op(plain, OpType::kSortAggregate),
            0);
  PlannerKnobs knobs;
  knobs.flags.set(Flag::kPartialAggregation);
  Plan partial = opt.optimize(query, knobs);
  EXPECT_EQ(count_op(partial, OpType::kLocalHashAggregate), 1);
}

TEST_F(OptimizerFixture, SpoolReuseSharesRepeatedScans) {
  // Snapshot twin of `dim` joined against it.
  Table twin = catalog.table(dim);
  twin.name = "dim_snapshot";
  twin.alias_of = dim;
  const int twin_id = catalog.add_table(twin);
  JoinEdge e;
  e.left_table = dim;
  e.right_table = twin_id;
  e.left_column = 1;
  e.right_column = 1;
  query.tables.push_back(twin_id);
  query.joins.push_back(e);

  NativeOptimizer opt(catalog);
  Plan plain = opt.optimize(query);
  EXPECT_EQ(count_op(plain, OpType::kSpoolRead), 0);
  PlannerKnobs knobs;
  knobs.flags.set(Flag::kSpoolReuse);
  Plan spooled = opt.optimize(query, knobs);
  EXPECT_EQ(count_op(spooled, OpType::kSpoolRead), 1);
  EXPECT_EQ(count_op(spooled, OpType::kTableScan), 3);
}

TEST_F(OptimizerFixture, CardScaleChangesEstimatesNotTruth) {
  give_fresh_stats();
  NativeOptimizer opt(catalog);
  PlannerKnobs scaled;
  scaled.card_scale = 3.0;
  Plan a = opt.optimize(query);
  Plan b = opt.optimize(query, scaled);
  // Root true cardinality identical regardless of the steering.
  EXPECT_NEAR(a.node(a.root()).true_rows, b.node(b.root()).true_rows,
              a.node(a.root()).true_rows * 1e-9);
}

TEST_F(OptimizerFixture, RoughCostPositiveAndMonotoneInRows) {
  NativeOptimizer opt(catalog);
  Plan plan = opt.optimize(query);
  const double base = opt.rough_cost(plan);
  EXPECT_GT(base, 0.0);
  Plan inflated = plan;
  for (PlanNode& n : inflated.mutable_nodes()) n.est_rows *= 10.0;
  EXPECT_GT(opt.rough_cost(inflated), base);
}

TEST_F(OptimizerFixture, SingleTableQuery) {
  Query q;
  q.tables = {dim};
  NativeOptimizer opt(catalog);
  Plan plan = opt.optimize(q);
  EXPECT_EQ(count_op(plan, OpType::kTableScan), 1);
  EXPECT_EQ(plan.node(plan.root()).op, OpType::kSink);
}

TEST_F(OptimizerFixture, EmptyQueryRejected) {
  NativeOptimizer opt(catalog);
  EXPECT_THROW(opt.optimize(Query{}), std::invalid_argument);
}

TEST_F(OptimizerFixture, OuterJoinNotBroadcast) {
  give_fresh_stats();
  query.joins[1].form = JoinForm::kLeft;
  NativeOptimizer opt(catalog);
  Plan plan = opt.optimize(query);
  // The left-outer edge must not use a broadcast join (our engine restricts
  // broadcast to inner joins); the other edge may.
  for (const PlanNode& n : plan.nodes()) {
    if (n.op == OpType::kBroadcastHashJoin) {
      EXPECT_EQ(n.join_form, JoinForm::kInner);
    }
  }
}

TEST_F(OptimizerFixture, PartitionPruningReflectedInScan) {
  Predicate part;
  part.table_id = fact;
  part.column = 0;
  part.fns = {FilterFn::kEq};
  part.selectivity = 0.1;
  query.predicates.push_back(part);
  NativeOptimizer opt(catalog);
  Plan plan = opt.optimize(query);
  for (const PlanNode& n : plan.nodes()) {
    if (n.op == OpType::kTableScan && n.table_id == fact) {
      EXPECT_LT(n.partitions_accessed, catalog.table(fact).num_partitions);
      EXPECT_GE(n.partitions_accessed, 1);
    }
  }
}

// Larger joins exercise the greedy path (> dp_table_limit).
TEST(OptimizerGreedy, ManyTableQueryUsesGreedyAndStaysConnected) {
  Catalog catalog;
  std::vector<int> ids;
  for (int i = 0; i < 12; ++i) {
    Table t;
    t.name = "t" + std::to_string(i);
    t.row_count = 1000 * (i + 1) * (i + 1);
    Column c0;
    c0.name = "c0";
    c0.ndv = 10;
    Column c1;
    c1.name = "c1";
    c1.ndv = t.row_count;
    t.columns = {c0, c1};
    TableStats s;
    s.available = true;
    s.observed_rows = t.row_count;
    ids.push_back(catalog.add_table(t));
    catalog.set_stats(ids.back(), s);
  }
  Query q;
  q.tables = ids;
  for (std::size_t i = 1; i < ids.size(); ++i) {
    JoinEdge e;
    e.left_table = ids[i - 1];
    e.right_table = ids[i];
    e.left_column = 1;
    e.right_column = 1;
    q.joins.push_back(e);
  }
  NativeOptimizerConfig cfg;
  cfg.dp_table_limit = 8;
  NativeOptimizer opt(catalog, cfg);
  Plan plan = opt.optimize(q);
  int scans = 0;
  for (const PlanNode& n : plan.nodes()) scans += n.op == OpType::kTableScan;
  EXPECT_EQ(scans, 12);
  int joins = 0;
  for (const PlanNode& n : plan.nodes()) joins += is_join(n.op);
  EXPECT_EQ(joins, 11);
}

}  // namespace
}  // namespace loam::warehouse
