// Cross-arm identity suite for the runtime-dispatched SIMD kernels: every
// compiled-and-runnable arm (scalar+fma, avx2, avx512) must produce exactly
// the bits of the portable scalar arm — fp32 via the single-fmaf-chain
// contract, int8 via exact integer arithmetic — over shapes whose tails
// sweep 1..7 (and the vector widths' edges) in every dimension. Also pins
// the 64-byte alignment of Mat/Workspace backing storage, the dispatch
// override hooks, and the quantization round-trip error bound.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "nn/mat.h"
#include "nn/quant.h"
#include "nn/simd.h"
#include "nn/workspace.h"
#include "util/rng.h"

namespace loam::nn {
namespace {

using simd::Arch;
using simd::KernelOps;

std::vector<const KernelOps*> runnable_arms() {
  std::vector<const KernelOps*> arms;
  for (const KernelOps* ops :
       {simd::kernel_ops_scalar_fma(), simd::kernel_ops_avx2(),
        simd::kernel_ops_avx512()}) {
    if (ops != nullptr && simd::cpu_supports(ops->arch)) arms.push_back(ops);
  }
  return arms;
}

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

// Shape sweep: every m in 1..8 (row-block remainders 1..7 plus a full
// block), ragged k (odd, even, above the unroll), and n covering tails 1..7
// around each vector width (8 for AVX2, 16 for AVX-512, 2x-width tiles).
std::vector<std::array<int, 3>> sweep_shapes() {
  std::vector<std::array<int, 3>> shapes;
  const int ks[] = {1, 2, 3, 5, 9};
  const int ns[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17,
                    23, 31, 32, 33, 39, 47, 63, 64, 65};
  for (int m = 1; m <= 8; ++m) {
    for (int k : ks) {
      for (int n : ns) shapes.push_back({m, k, n});
    }
  }
  return shapes;
}

TEST(SimdDispatch, ScalarArmAlwaysPresent) {
  ASSERT_NE(simd::kernel_ops_scalar(), nullptr);
  EXPECT_TRUE(simd::cpu_supports(Arch::kScalar));
  EXPECT_NE(simd::active_name(), nullptr);
}

TEST(SimdDispatch, ForceAndResetArch) {
  ASSERT_TRUE(simd::force_arch(Arch::kScalar));
  EXPECT_EQ(simd::active_arch(), Arch::kScalar);
  EXPECT_STREQ(simd::active_name(), "scalar");
  simd::reset_arch();
  // After reset the selection honors LOAM_SIMD/auto again; whatever it is,
  // it must be runnable.
  EXPECT_TRUE(simd::cpu_supports(simd::active_arch()));
}

// One fixture run per fp32 kernel: scalar arm output is the ground truth,
// every other arm must match it to the bit, including the untouched C tail
// beyond the live region (masked stores must not write past n).
using GemmFn = void (*)(const float*, const float*, float*, int, int, int);

void run_cross_arm_fp32(GemmFn KernelOps::* fn, bool a_is_kxm,
                        bool b_is_nxk) {
  const KernelOps* ref = simd::kernel_ops_scalar();
  ASSERT_NE(ref, nullptr);
  Rng rng(1234);
  const auto arms = runnable_arms();
  for (const auto& s : sweep_shapes()) {
    const int m = s[0], k = s[1], n = s[2];
    const std::size_t a_len = static_cast<std::size_t>(a_is_kxm ? k * m : m * k);
    const std::size_t b_len = static_cast<std::size_t>(b_is_nxk ? n * k : k * n);
    const std::vector<float> a = random_vec(a_len, rng);
    const std::vector<float> b = random_vec(b_len, rng);
    // Pad C with a sentinel tail so out-of-bounds stores are caught.
    const std::size_t c_len = static_cast<std::size_t>(m) * n;
    std::vector<float> base = random_vec(c_len + 16, rng);
    std::vector<float> want = base;
    (ref->*fn)(a.data(), b.data(), want.data(), m, k, n);
    for (const KernelOps* arm : arms) {
      std::vector<float> got = base;
      (arm->*fn)(a.data(), b.data(), got.data(), m, k, n);
      ASSERT_EQ(std::memcmp(got.data(), want.data(),
                            (c_len + 16) * sizeof(float)),
                0)
          << arm->name << " diverges from scalar at m=" << m << " k=" << k
          << " n=" << n;
    }
  }
}

TEST(SimdKernel, GemmNnCrossArmBitIdentical) {
  run_cross_arm_fp32(&KernelOps::gemm_nn, false, false);
}

TEST(SimdKernel, GemmNnSparseCrossArmBitIdentical) {
  run_cross_arm_fp32(&KernelOps::gemm_nn_sparse, false, false);
}

TEST(SimdKernel, GemmTnCrossArmBitIdentical) {
  run_cross_arm_fp32(&KernelOps::gemm_tn, true, false);
}

TEST(SimdKernel, GemmNtCrossArmBitIdentical) {
  run_cross_arm_fp32(&KernelOps::gemm_nt, false, true);
}

TEST(SimdKernel, GemmS8CrossArmExact) {
  const KernelOps* ref = simd::kernel_ops_scalar();
  ASSERT_NE(ref, nullptr);
  Rng rng(4321);
  const auto arms = runnable_arms();
  for (const auto& s : sweep_shapes()) {
    const int m = s[0], k = s[1], n = s[2];
    std::vector<std::int8_t> a(static_cast<std::size_t>(m) * k);
    for (auto& v : a) {
      v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    }
    // Quantized weights via the real packer so the layout under test is the
    // layout the serve path produces.
    Mat w(k, n);
    for (int kk = 0; kk < k; ++kk) {
      for (int j = 0; j < n; ++j) {
        w.at(kk, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
    }
    quant::S8Panel panel;
    pack_s8_panel(w, quant::per_channel_scales({&w}), &panel);
    ASSERT_EQ(panel.n_pad % quant::kPanelColAlign, 0);

    const std::size_t c_len = static_cast<std::size_t>(m) * n;
    std::vector<std::int32_t> base(c_len + 16);
    for (auto& v : base) {
      v = static_cast<std::int32_t>(rng.uniform_int(-1000, 1000));
    }
    std::vector<std::int32_t> want = base;
    ref->gemm_s8(a.data(), panel.data.data(), want.data(), m, k, n,
                 panel.n_pad);
    for (const KernelOps* arm : arms) {
      std::vector<std::int32_t> got = base;
      arm->gemm_s8(a.data(), panel.data.data(), got.data(), m, k, n,
                   panel.n_pad);
      ASSERT_EQ(std::memcmp(got.data(), want.data(),
                            (c_len + 16) * sizeof(std::int32_t)),
                0)
          << arm->name << " int8 diverges at m=" << m << " k=" << k
          << " n=" << n;
    }
  }
}

TEST(SimdKernel, GemmS8RowsMatchesDenseAndCrossArm) {
  // The CSR kernel over quantize_compact rows must equal the dense scalar
  // gemm_s8 over the same quantized rows — including through child row-maps
  // with negative (zero-row) entries — on every arm, exactly.
  const KernelOps* ref = simd::kernel_ops_scalar();
  ASSERT_NE(ref, nullptr);
  Rng rng(8765);
  auto arms = runnable_arms();
  arms.push_back(ref);  // the scalar CSR kernel is under test too
  for (const auto& s : sweep_shapes()) {
    const int m = s[0], k = s[1], n = s[2];
    // Mixed-sparsity activations: some zeros so compaction actually drops
    // pairs, plus fully-zero rows.
    Mat x(m, k);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < k; ++j) {
        x.at(i, j) = rng.uniform(0.0, 1.0) < 0.4
                         ? 0.0f
                         : static_cast<float>(rng.uniform(-2.0, 2.0));
      }
    }
    if (m > 2) {
      for (int j = 0; j < k; ++j) x.at(1, j) = 0.0f;
    }
    const float sa = quant::tensor_scale(x);
    std::vector<std::int8_t> qdense;
    quant::quantize_activations(x, sa, &qdense);
    quant::S8Rows rows;
    quant::quantize_compact(x, sa, &rows);
    ASSERT_EQ(rows.m, m);

    Mat w(k, n);
    for (int kk = 0; kk < k; ++kk) {
      for (int j = 0; j < n; ++j) {
        w.at(kk, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
    }
    quant::S8Panel panel;
    pack_s8_panel(w, quant::per_channel_scales({&w}), &panel);

    // Row map: identity prefix, a few permuted entries, and a -1.
    std::vector<int> map(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) map[static_cast<std::size_t>(i)] = m - 1 - i;
    map[0] = -1;

    const std::size_t c_len = static_cast<std::size_t>(m) * n;
    std::vector<std::int32_t> base(c_len + 16);
    for (auto& v : base) {
      v = static_cast<std::int32_t>(rng.uniform_int(-1000, 1000));
    }
    // Dense reference, identity mapping.
    std::vector<std::int32_t> want_id = base;
    ref->gemm_s8(qdense.data(), panel.data.data(), want_id.data(), m, k, n,
                 panel.n_pad);
    // Dense reference, mapped rows (gather by hand, zero row for -1).
    std::vector<std::int8_t> gathered(static_cast<std::size_t>(m) * k, 0);
    for (int i = 0; i < m; ++i) {
      const int r = map[static_cast<std::size_t>(i)];
      if (r < 0) continue;
      std::memcpy(gathered.data() + static_cast<std::size_t>(i) * k,
                  qdense.data() + static_cast<std::size_t>(r) * k,
                  static_cast<std::size_t>(k));
    }
    std::vector<std::int32_t> want_map = base;
    ref->gemm_s8(gathered.data(), panel.data.data(), want_map.data(), m, k, n,
                 panel.n_pad);

    for (const KernelOps* arm : arms) {
      std::vector<std::int32_t> got = base;
      arm->gemm_s8_rows(rows.pairs.data(), rows.pos.data(),
                        rows.row_ptr.data(), nullptr, panel.data.data(),
                        got.data(), m, n, panel.n_pad);
      ASSERT_EQ(std::memcmp(got.data(), want_id.data(),
                            (c_len + 16) * sizeof(std::int32_t)),
                0)
          << arm->name << " CSR identity diverges at m=" << m << " k=" << k
          << " n=" << n;
      got = base;
      arm->gemm_s8_rows(rows.pairs.data(), rows.pos.data(),
                        rows.row_ptr.data(), map.data(), panel.data.data(),
                        got.data(), m, n, panel.n_pad);
      ASSERT_EQ(std::memcmp(got.data(), want_map.data(),
                            (c_len + 16) * sizeof(std::int32_t)),
                0)
          << arm->name << " CSR row-map diverges at m=" << m << " k=" << k
          << " n=" << n;
    }
  }
}

TEST(SimdKernel, MatmulEntryPointsHonorForcedArm) {
  // The Mat-level entry points must follow force_arch: run the same product
  // under every runnable arm and require identical bits end to end.
  Rng rng(77);
  Mat a(7, 13), b(13, 21);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      a.at(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  for (int i = 0; i < b.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      b.at(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  ASSERT_TRUE(simd::force_arch(Arch::kScalar));
  Mat want;
  matmul(a, b, want);
  for (const KernelOps* arm : runnable_arms()) {
    ASSERT_TRUE(simd::force_arch(arm->arch));
    Mat got;
    matmul(a, b, got);
    for (int i = 0; i < want.rows(); ++i) {
      for (int j = 0; j < want.cols(); ++j) {
        EXPECT_EQ(got.at(i, j), want.at(i, j)) << arm->name;
      }
    }
  }
  simd::reset_arch();
}

TEST(MatAlignment, BackingStorageIs64ByteAligned) {
  for (int rows : {1, 3, 7, 16, 33}) {
    for (int cols : {1, 5, 8, 17, 64}) {
      Mat m(rows, cols);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % 64, 0u)
          << rows << "x" << cols;
      m.resize(rows + 1, cols + 3);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % 64, 0u)
          << "after resize";
      Mat copy = m;
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(copy.data()) % 64, 0u)
          << "after copy";
    }
  }
}

TEST(MatAlignment, CopyAndResizePreserveContents) {
  Rng rng(55);
  Mat m(5, 9);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 9; ++j) {
      m.at(i, j) = static_cast<float>(rng.uniform(-3.0, 3.0));
    }
  }
  Mat copy = m;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 9; ++j) EXPECT_EQ(copy.at(i, j), m.at(i, j));
  }
  Mat assigned;
  assigned = m;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 9; ++j) EXPECT_EQ(assigned.at(i, j), m.at(i, j));
  }
  // Growth within a flat buffer preserves the existing prefix and
  // zero-fills the tail (vector semantics).
  Mat flat(1, 6);
  for (int j = 0; j < 6; ++j) flat.at(0, j) = static_cast<float>(j + 1);
  flat.resize(1, 10);
  for (int j = 0; j < 6; ++j) EXPECT_EQ(flat.at(0, j), static_cast<float>(j + 1));
  for (int j = 6; j < 10; ++j) EXPECT_EQ(flat.at(0, j), 0.0f);
}

TEST(MatAlignment, WorkspaceBuffersAre64ByteAligned) {
  Workspace ws;
  Mat m = ws.borrow(9, 17);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % 64, 0u);
  ws.give_back(std::move(m));
  Mat again = ws.borrow(3, 5);  // pooled reuse keeps the aligned allocation
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(again.data()) % 64, 0u);
  ws.give_back(std::move(again));
}

TEST(Quantization, RoundTripErrorBounded) {
  // Symmetric int8: for |x| <= max|tensor|, dequant(quant(x)) is within half
  // a quantization step of x (round-to-nearest), and 0 maps to exactly 0.
  // The bound carries a small slack because quantize_activations multiplies
  // by a precomputed 1/s, which can round an exact-halfway element one step
  // differently than a true divide.
  Rng rng(99);
  Mat x(16, 24);
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      x.at(i, j) = static_cast<float>(rng.uniform(-4.0, 4.0));
    }
  }
  x.at(0, 0) = 0.0f;
  const float s = quant::tensor_scale(x);
  ASSERT_GT(s, 0.0f);
  std::vector<std::int8_t> q;
  quant::quantize_activations(x, s, &q);
  const float bound = 0.5f * s * (1.0f + 1e-4f);
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      const float back =
          static_cast<float>(q[static_cast<std::size_t>(i) * 24 + j]) * s;
      EXPECT_LE(std::fabs(back - x.at(i, j)), bound)
          << "x=" << x.at(i, j) << " s=" << s;
    }
  }
  EXPECT_EQ(q[0], 0);
}

TEST(Quantization, PerChannelScalesAreJointAcrossMats) {
  Mat w1(4, 3), w2(2, 3);
  w1.at(0, 0) = 2.0f;
  w2.at(1, 0) = -6.35f;  // dominates channel 0
  w1.at(3, 1) = 1.27f;
  // channel 2 all zero -> epsilon floor, quantizes to 0
  const auto s = quant::per_channel_scales({&w1, &w2});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_FLOAT_EQ(s[0], 6.35f / 127.0f);
  EXPECT_FLOAT_EQ(s[1], 1.27f / 127.0f);
  EXPECT_GT(s[2], 0.0f);
  EXPECT_EQ(quant::quantize_one(w2.at(1, 0), s[0]), -127);
  EXPECT_EQ(quant::quantize_one(0.0f, s[2]), 0);
}

}  // namespace
}  // namespace loam::nn
