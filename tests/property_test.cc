// Cross-module property tests, parameterized over heterogeneous project
// archetypes: whatever project the generator produces, the optimizer must
// emit well-formed annotated plans, stage decomposition must partition them
// at exchange boundaries, execution must be positive and finite, and the
// encoder must be a pure function of the plan and environment.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/encoding.h"
#include "core/explorer.h"
#include "warehouse/executor.h"
#include "warehouse/native_optimizer.h"
#include "warehouse/stages.h"
#include "warehouse/workload.h"

namespace loam {
namespace {

using namespace warehouse;

class ArchetypeProperty : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    const auto pool = sampled_archetypes(12, 2024);
    archetype = pool[static_cast<std::size_t>(GetParam())];
    WorkloadGenerator gen(300 + static_cast<std::uint64_t>(GetParam()));
    project = gen.make_project(archetype);
    optimizer = std::make_unique<NativeOptimizer>(project.catalog);
    Rng rng(31 + static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 10; ++i) {
      const auto& tmpl = project.templates[static_cast<std::size_t>(i) %
                                           project.templates.size()];
      queries.push_back(gen.instantiate(project, tmpl, 0, rng));
    }
  }

  ProjectArchetype archetype;
  Project project;
  std::unique_ptr<NativeOptimizer> optimizer;
  std::vector<Query> queries;
};

TEST_P(ArchetypeProperty, PlansAreWellFormedTrees) {
  for (const Query& q : queries) {
    const Plan plan = optimizer->optimize(q);
    // Exactly one root; every non-root node referenced exactly once.
    std::vector<int> refs(static_cast<std::size_t>(plan.node_count()), 0);
    for (const PlanNode& n : plan.nodes()) {
      if (n.left >= 0) ++refs[static_cast<std::size_t>(n.left)];
      if (n.right >= 0) ++refs[static_cast<std::size_t>(n.right)];
    }
    int roots = 0;
    for (int i = 0; i < plan.node_count(); ++i) {
      if (refs[static_cast<std::size_t>(i)] == 0) {
        ++roots;
        EXPECT_EQ(i, plan.root());
      } else {
        EXPECT_EQ(refs[static_cast<std::size_t>(i)], 1) << "node shared or orphaned";
      }
    }
    EXPECT_EQ(roots, 1);
    // Postorder covers every node exactly once.
    const auto order = plan.postorder();
    std::set<int> seen(order.begin(), order.end());
    EXPECT_EQ(static_cast<int>(seen.size()), plan.node_count());
  }
}

TEST_P(ArchetypeProperty, ScansMatchQueryTables) {
  for (const Query& q : queries) {
    const Plan plan = optimizer->optimize(q);
    std::multiset<int> scanned;
    for (const PlanNode& n : plan.nodes()) {
      if (n.op == OpType::kTableScan || n.op == OpType::kSpoolRead) {
        scanned.insert(n.table_id);
      }
    }
    std::multiset<int> expected(q.tables.begin(), q.tables.end());
    EXPECT_EQ(scanned, expected);
  }
}

TEST_P(ArchetypeProperty, CardinalitiesArePositiveAndFinite) {
  for (const Query& q : queries) {
    const Plan plan = optimizer->optimize(q);
    for (const PlanNode& n : plan.nodes()) {
      EXPECT_GE(n.true_rows, 1.0);
      EXPECT_GE(n.est_rows, 1.0);
      EXPECT_TRUE(std::isfinite(n.true_rows));
      EXPECT_TRUE(std::isfinite(n.est_rows));
    }
  }
}

TEST_P(ArchetypeProperty, StageDecompositionPartitionsNodes) {
  for (const Query& q : queries) {
    Plan plan = optimizer->optimize(q);
    const StageGraph graph = decompose_into_stages(plan);
    std::size_t assigned = 0;
    for (const Stage& s : graph.stages) {
      assigned += s.node_ids.size();
      EXPECT_GE(s.parallelism, 1);
      for (int u : s.upstream) {
        EXPECT_GE(u, 0);
        EXPECT_LT(u, graph.stage_count());
        EXPECT_NE(u, s.id);
      }
    }
    EXPECT_EQ(assigned, static_cast<std::size_t>(plan.node_count()));
    EXPECT_EQ(graph.topological_order().size(),
              static_cast<std::size_t>(graph.stage_count()));
  }
}

TEST_P(ArchetypeProperty, ExecutionIsPositiveFiniteAndEnvConsistent) {
  ClusterConfig ccfg;
  ccfg.machines = archetype.cluster_machines;
  Cluster cluster(ccfg, 5);
  Executor executor(&cluster);
  Rng rng(7);
  for (const Query& q : queries) {
    Plan plan = optimizer->optimize(q);
    const ExecutionResult r = executor.execute(plan, rng);
    EXPECT_GT(r.cpu_cost, 0.0);
    EXPECT_TRUE(std::isfinite(r.cpu_cost));
    EXPECT_GT(r.latency_s, 0.0);
    // Total equals the per-stage sum.
    double stage_sum = 0.0;
    for (const StageExecution& s : r.stages) stage_sum += s.cpu_cost;
    EXPECT_NEAR(stage_sum, r.cpu_cost, 1e-6 * r.cpu_cost);
    // Plan-average env lies within the convex hull of stage envs.
    double min_idle = 1.0, max_idle = 0.0;
    for (const StageExecution& s : r.stages) {
      min_idle = std::min(min_idle, s.env.cpu_idle);
      max_idle = std::max(max_idle, s.env.cpu_idle);
    }
    EXPECT_GE(r.plan_avg_env.cpu_idle, min_idle - 1e-9);
    EXPECT_LE(r.plan_avg_env.cpu_idle, max_idle + 1e-9);
  }
}

TEST_P(ArchetypeProperty, EncoderIsPureAndBounded) {
  core::PlanEncoder encoder(&project.catalog);
  for (const Query& q : queries) {
    const Plan plan = optimizer->optimize(q);
    const nn::Tree a = encoder.encode(plan, nullptr, std::nullopt);
    const nn::Tree b = encoder.encode(plan, nullptr, std::nullopt);
    ASSERT_EQ(a.node_count(), b.node_count());
    for (int i = 0; i < a.node_count(); ++i) {
      for (int j = 0; j < a.features.cols(); ++j) {
        ASSERT_FLOAT_EQ(a.features.at(i, j), b.features.at(i, j));
        ASSERT_GE(a.features.at(i, j), 0.0f);
        ASSERT_LE(a.features.at(i, j), 1.0f);
      }
    }
  }
}

TEST_P(ArchetypeProperty, ExplorerCandidatesExecutable) {
  core::PlanExplorer explorer(optimizer.get());
  ClusterConfig ccfg;
  ccfg.machines = archetype.cluster_machines;
  Cluster cluster(ccfg, 11);
  Executor executor(&cluster);
  Rng rng(13);
  for (const Query& q : queries) {
    const core::CandidateGeneration gen = explorer.explore(q);
    for (const Plan& p : gen.plans) {
      Plan copy = p;
      const ExecutionResult r = executor.execute(copy, rng);
      EXPECT_GT(r.cpu_cost, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Archetypes, ArchetypeProperty,
                         ::testing::Values(0, 2, 4, 6, 8, 10));

// ---------------------------------------------------------------------------
// Distribution-level property sweeps.
// ---------------------------------------------------------------------------

class LogNormalSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LogNormalSweep, MleAndQuantileRoundTrips) {
  const auto [mu, sigma] = GetParam();
  Rng rng(17);
  std::vector<double> samples;
  for (int i = 0; i < 8000; ++i) samples.push_back(rng.lognormal(mu, sigma));
  const LogNormal fit = fit_lognormal_mle(samples);
  EXPECT_NEAR(fit.mu, mu, 0.05 + 0.03 * sigma);
  EXPECT_NEAR(fit.sigma, sigma, 0.05);
  // CDF(quantile(p)) == p across the body of the distribution.
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_NEAR(fit.cdf(fit.quantile(p)), p, 1e-9);
  }
  // Sample mean matches the analytic mean.
  EXPECT_NEAR(mean(samples), fit.mean(), 0.05 * fit.mean());
}

INSTANTIATE_TEST_SUITE_P(
    Params, LogNormalSweep,
    ::testing::Values(std::make_pair(0.0, 0.1), std::make_pair(2.0, 0.3),
                      std::make_pair(5.0, 0.8), std::make_pair(8.0, 1.2)));

class HashDimSweep : public ::testing::TestWithParam<int> {};

TEST_P(HashDimSweep, MultiSegmentBeatsSingleBucket) {
  const int n_ids = GetParam();
  MultiSegmentHashConfig cfg{5, 10};
  EXPECT_LT(expected_collision_prob_multi(n_ids, cfg),
            expected_collision_prob_single(n_ids, cfg.dim()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, HashDimSweep, ::testing::Values(20, 50, 100, 400));

}  // namespace
}  // namespace loam
