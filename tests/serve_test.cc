// Tests of the online optimizer service: native fallback, bootstrap +
// gated promotion, hot-swap safety under concurrent serving (the TSan gate
// certifies this suite), deviance-triggered rollback, and restart
// continuity from the durable registry + journal.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "serve/service.h"
#include "warehouse/flighting.h"

namespace loam::serve {
namespace {

namespace fs = std::filesystem;

struct ServeFixture {
  std::unique_ptr<core::ProjectRuntime> runtime;
  std::string root;

  explicit ServeFixture(const std::string& tag) {
    warehouse::ProjectArchetype a;
    a.name = "serve";
    a.seed = 5;
    a.n_tables = 14;
    a.n_templates = 8;
    a.queries_per_day = 50.0;
    a.stats_coverage = 0.15;
    a.cluster_machines = 24;
    core::RuntimeConfig rc;
    rc.seed = 31;
    runtime = std::make_unique<core::ProjectRuntime>(a, rc);
    runtime->simulate_history(5, 50);
    root = (fs::temp_directory_path() /
            ("loam_serve_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(root);
    fs::create_directories(root);
  }
  ~ServeFixture() { fs::remove_all(root); }

  // Small everything: tiny predictor, short gate, low thresholds — the suite
  // runs inside the tier-1 budget (and again under TSan).
  ServeConfig config() const {
    ServeConfig cfg;
    cfg.predictor.epochs = 4;
    cfg.predictor.hidden_dim = 16;
    cfg.predictor.embed_dim = 16;
    cfg.predictor.tcn_layers = 2;
    cfg.gate.sample_queries = 6;
    cfg.gate.replay_runs = 2;
    cfg.min_train_examples = 20;
    cfg.bootstrap_candidate_queries = 10;
    cfg.batch_linger_us = 100;
    cfg.registry_root = root + "/registry";
    cfg.journal_path = root + "/feedback.jnl";
    return cfg;
  }

  // Ground truth for record_feedback: replay the served plan in flighting.
  warehouse::ExecutionResult execute(const warehouse::Plan& plan,
                                     std::uint64_t seed) const {
    warehouse::FlightingEnv env(runtime->config().cluster,
                                runtime->config().executor, seed);
    return env.replay_once(plan);
  }
};

std::unique_ptr<core::AdaptiveCostPredictor> untrained_model(
    const OptimizerService& service) {
  return std::make_unique<core::AdaptiveCostPredictor>(
      service.encoder().feature_dim(), service.config().predictor);
}

ModelVersionMeta approved_meta() {
  ModelVersionMeta meta;
  meta.approved = true;
  return meta;
}

TEST(OptimizerService, NativeFallbackServesDefaultPlans) {
  ServeFixture fx("fallback");
  ServeConfig cfg = fx.config();
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  OptimizerService service(fx.runtime.get(), cfg);

  // Before start() admission is closed.
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 5, 4);
  ASSERT_GE(queries.size(), 2u);
  std::future<ServeDecision> future;
  EXPECT_FALSE(service.try_submit(queries[0], &future));
  EXPECT_THROW(service.optimize(queries[0]), std::runtime_error);
  EXPECT_GE(service.stats().rejected, 2u);

  service.start();
  EXPECT_EQ(service.active_version(), -1);
  for (const warehouse::Query& q : queries) {
    const ServeDecision d = service.optimize(q);
    EXPECT_EQ(d.model_version, -1);
    EXPECT_EQ(d.chosen, d.generation.default_index);
    EXPECT_TRUE(d.predicted.empty());
    EXPECT_GE(d.batch_size, 1);
  }
  const OptimizerService::Stats stats = service.stats();
  EXPECT_EQ(stats.fallback_decisions, queries.size());
  EXPECT_GE(stats.batches, 1u);

  // An empty journal is below min_train_examples: retrain skips, no version.
  EXPECT_FALSE(service.retrain_sync());
  EXPECT_EQ(service.stats().retrain_skipped, 1u);
  EXPECT_EQ(service.active_version(), -1);
  service.stop();
}

TEST(OptimizerService, BootstrapTrainsGatesAndPromotes) {
  ServeFixture fx("bootstrap");
  ServeConfig cfg = fx.config();
  cfg.auto_retrain = false;
  // Lenient gate: this test exercises the promotion plumbing, not the
  // model's quality.
  cfg.gate.max_regression = 1e9;
  cfg.gate.max_regression_ratio = 1e9;
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();

  EXPECT_GT(service.journal().records(), 0u);
  EXPECT_GT(service.journal().executed_records(), 0u);
  ASSERT_EQ(service.active_version(), 1);
  const OptimizerService::Stats stats = service.stats();
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.retrain_approved, 1u);
  EXPECT_GE(stats.swaps, 1u);

  const auto meta = service.registry().latest_approved();
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->version, 1);
  EXPECT_TRUE(meta->approved);
  EXPECT_EQ(meta->watermark_day, 4);  // history covers days 0..4
  EXPECT_GT(meta->journal_records, 0u);
  EXPECT_FALSE(meta->gate_json.empty());
  EXPECT_TRUE(fs::exists(meta->checkpoint_path));

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(8, 8, 3);
  for (const warehouse::Query& q : queries) {
    const ServeDecision d = service.optimize(q);
    EXPECT_EQ(d.model_version, 1);
    ASSERT_EQ(d.predicted.size(), d.generation.plans.size());
    EXPECT_GE(d.chosen, 0);
    EXPECT_LT(d.chosen, static_cast<int>(d.generation.plans.size()));
    // Feedback flows back into the journal.
    const std::uint64_t before = service.journal().executed_records();
    service.record_feedback(d, fx.execute(d.generation.plans[d.chosen], 99));
    EXPECT_EQ(service.journal().executed_records(), before + 1);
  }
  service.stop();
}

TEST(OptimizerService, GateRejectionKeepsFallbackButAuditsVersion) {
  ServeFixture fx("reject");
  ServeConfig cfg = fx.config();
  cfg.auto_retrain = false;
  cfg.gate.max_regression = -0.99;  // demand an impossible 99% gain
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();

  EXPECT_EQ(service.active_version(), -1);
  EXPECT_EQ(service.stats().retrain_rejected, 1u);
  EXPECT_FALSE(service.registry().latest_approved().has_value());
  // The rejected model is still in the registry for auditing.
  const std::vector<ModelVersionMeta> versions = service.registry().versions();
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_FALSE(versions[0].approved);
  EXPECT_TRUE(fs::exists(versions[0].checkpoint_path));

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(8, 8, 2);
  for (const warehouse::Query& q : queries) {
    EXPECT_EQ(service.optimize(q).model_version, -1);
  }
  service.stop();
}

TEST(OptimizerService, HotSwapStressEveryRequestServedByExactlyOneVersion) {
  ServeFixture fx("swapstress");
  ServeConfig cfg = fx.config();
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  cfg.max_batch = 4;
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();

  ModelVersionMeta m1;  // v1 stays promotable for the swap loop
  m1.approved = true;
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), m1), 1);
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), approved_meta()),
            2);

  // Pre-generate all queries on the main thread: make_queries mutates the
  // runtime's RNG and must not race the submitters.
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 7, 24);
  ASSERT_GE(queries.size(), 8u);
  const std::size_t half = queries.size() / 2;

  std::atomic<bool> swapping{true};
  std::vector<ServeDecision> decisions(queries.size());
  auto submitter = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      decisions[i] = service.optimize(queries[i]);
    }
  };
  std::thread swapper([&] {
    int k = 0;
    while (swapping.load(std::memory_order_relaxed)) {
      switch (k++ % 3) {
        case 0: service.swap_to_version(1); break;
        case 1: service.swap_to_version(2); break;
        default: service.swap_to_fallback(); break;
      }
      std::this_thread::yield();
    }
  });
  std::thread a(submitter, 0, half);
  std::thread b(submitter, half, queries.size());
  a.join();
  b.join();
  swapping.store(false, std::memory_order_relaxed);
  swapper.join();

  for (const ServeDecision& d : decisions) {
    // Exactly one registry version (or the fallback) served each request,
    // and the decision payload is internally consistent with it.
    EXPECT_TRUE(d.model_version == -1 || d.model_version == 1 ||
                d.model_version == 2);
    if (d.model_version >= 0) {
      EXPECT_EQ(d.predicted.size(), d.generation.plans.size());
    } else {
      EXPECT_TRUE(d.predicted.empty());
      EXPECT_EQ(d.chosen, d.generation.default_index);
    }
    EXPECT_GE(d.chosen, 0);
    EXPECT_LT(d.chosen, static_cast<int>(d.generation.plans.size()));
  }
  const OptimizerService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, queries.size());
  EXPECT_GE(stats.swaps, 2u);
  service.stop();
}

TEST(OptimizerService, HotSwapInvalidatesScoreCacheStructurally) {
  ServeFixture fx("cacheswap");
  ServeConfig cfg = fx.config();
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();
  ModelVersionMeta m1;  // v1 stays promotable for the rollback leg below
  m1.approved = true;
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), m1), 1);

  // One query served repeatedly: exploration is deterministic, so every pass
  // presents the same (signature-unique) candidate set.
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 5, 1);
  ASSERT_FALSE(queries.empty());
  const warehouse::Query& q = queries.front();

  const ServeDecision cold = service.optimize(q);
  ASSERT_EQ(cold.model_version, 1);
  const std::uint64_t n = cold.generation.plans.size();
  EXPECT_EQ(service.inference_cache().score_stats().hits, 0u);
  const ServeDecision warm = service.optimize(q);
  const std::uint64_t hits_v1 = service.inference_cache().score_stats().hits;
  EXPECT_GE(hits_v1, n);  // the whole candidate set re-served from cache
  // ... and bit-identical to the cold pass.
  EXPECT_EQ(warm.chosen, cold.chosen);
  ASSERT_EQ(warm.predicted.size(), cold.predicted.size());
  for (std::size_t i = 0; i < warm.predicted.size(); ++i) {
    EXPECT_EQ(warm.predicted[i], cold.predicted[i]);
  }

  // Hot-swap: score keys carry the registry version, so v1's entries cannot
  // match a single lookup made on behalf of v2 — zero stale hits, by
  // construction rather than by flushing.
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), approved_meta()),
            2);
  const ServeDecision post_swap = service.optimize(q);
  EXPECT_EQ(post_swap.model_version, 2);
  EXPECT_EQ(service.inference_cache().score_stats().hits, hits_v1);
  service.optimize(q);  // the cache resumes working under v2
  EXPECT_GT(service.inference_cache().score_stats().hits, hits_v1);

  // Rolling back to v1 re-hits its still-valid entries: same checkpoint,
  // same scores — a legitimate reuse, not staleness.
  service.swap_to_version(1);
  const std::uint64_t before_rollback =
      service.inference_cache().score_stats().hits;
  const ServeDecision rolled = service.optimize(q);
  EXPECT_EQ(rolled.model_version, 1);
  EXPECT_GE(service.inference_cache().score_stats().hits, before_rollback + n);
  EXPECT_EQ(rolled.chosen, cold.chosen);
  service.stop();
}

TEST(OptimizerService, DevianceRollbackStepsDownThroughVersions) {
  ServeFixture fx("rollback");
  ServeConfig cfg = fx.config();
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  cfg.monitor.window = 8;
  cfg.monitor.min_samples = 3;
  cfg.monitor.max_mean_overrun = 0.5;
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();

  // Two approved versions of an UNTRAINED predictor: its unfitted scaler
  // predicts costs near 1 while real executions land orders of magnitude
  // higher, so the one-sided log overrun trips the monitor deterministically.
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), approved_meta()),
            1);
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), approved_meta()),
            2);
  ASSERT_EQ(service.active_version(), 2);

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 8, 40);
  ASSERT_GE(queries.size(), 10u);
  std::size_t i = 0;
  // Phase 1: regress v2 -> automatic step-down to the previous approved v1.
  while (service.active_version() == 2 && i < queries.size()) {
    const ServeDecision d = service.optimize(queries[i]);
    service.record_feedback(d, fx.execute(d.generation.plans[d.chosen], 7 + i));
    ++i;
  }
  ASSERT_EQ(service.active_version(), 1);
  EXPECT_EQ(service.stats().rollbacks, 1u);
  ASSERT_TRUE(service.registry().find(2).has_value());
  EXPECT_TRUE(service.registry().find(2)->rolled_back);

  // Phase 2: v1 is as bad -> final fallback to the native optimizer.
  while (service.active_version() == 1 && i < queries.size()) {
    const ServeDecision d = service.optimize(queries[i]);
    service.record_feedback(d, fx.execute(d.generation.plans[d.chosen], 7 + i));
    ++i;
  }
  ASSERT_EQ(service.active_version(), -1);
  EXPECT_EQ(service.stats().rollbacks, 2u);
  EXPECT_TRUE(service.registry().find(1)->rolled_back);
  EXPECT_FALSE(service.registry().latest_approved().has_value());

  // Rolled-back versions stay demoted; serving continues on the fallback.
  const ServeDecision d = service.optimize(queries.at(i));
  EXPECT_EQ(d.model_version, -1);
  EXPECT_EQ(d.chosen, d.generation.default_index);
  service.stop();
}

TEST(OptimizerService, RestartResumesLatestApprovedAndJournal) {
  ServeFixture fx("restart");
  ServeConfig cfg = fx.config();
  cfg.auto_retrain = false;
  cfg.gate.max_regression = 1e9;
  cfg.gate.max_regression_ratio = 1e9;

  std::uint64_t journal_records = 0;
  {
    OptimizerService service(fx.runtime.get(), cfg);
    service.start();
    ASSERT_EQ(service.active_version(), 1);
    journal_records = service.journal().records();
    ASSERT_GT(journal_records, 0u);
    service.stop();
  }
  // A restarted service finds the approved version in the registry and the
  // feedback in the journal: no re-bootstrap, no retrain, model hot from
  // the checkpoint.
  OptimizerService service(fx.runtime.get(), cfg);
  EXPECT_EQ(service.active_version(), 1);
  service.start();
  EXPECT_EQ(service.active_version(), 1);
  EXPECT_EQ(service.stats().retrains, 0u);
  EXPECT_EQ(service.journal().records(), journal_records);

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(9, 9, 2);
  for (const warehouse::Query& q : queries) {
    const ServeDecision d = service.optimize(q);
    EXPECT_EQ(d.model_version, 1);
    EXPECT_EQ(d.predicted.size(), d.generation.plans.size());
  }
  service.stop();
}

// Pacing knobs scaled for a test-sized service: short filter windows and
// probe intervals so the controller moves through its states within the
// soak's wall time.
PacingConfig test_pacing() {
  PacingConfig p;
  p.enabled = true;
  p.bw_window_ticks = 50'000'000;       // 50ms
  p.delay_window_ticks = 200'000'000;   // 200ms
  p.min_round_ticks = 200'000;          // 0.2ms
  p.probe_interval_ticks = 20'000'000;  // 20ms
  p.min_inflight = 2.0;
  p.max_batch = 8;
  return p;
}

// Overload soak: a 10x-style burst from several submitter threads against a
// paced service. Nothing is ever rejected — excess load is shed to the
// native fallback, counted in stats().shed and the
// loam.serve.pacing.shed_total counter, and every future resolves.
TEST(OptimizerService, PacingOverloadShedsToFallbackWithoutDrops) {
  ServeFixture fx("paceshed");
  ServeConfig cfg = fx.config();
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  cfg.max_batch = 4;
  cfg.queue_capacity = 16;  // small: overflow converts to shed, not reject
  cfg.pacing = test_pacing();
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();
  ASSERT_EQ(service.publish_and_swap(untrained_model(service), approved_meta()),
            1);

  // Metrics on for this soak (the obs house rule: recording is off the
  // decision path and bit-identical on/off), so the shed counter can be
  // checked against stats(). Handles are process-global: compare deltas.
  obs::set_metrics_enabled(true);
  obs::Counter* shed_counter =
      obs::Registry::instance().counter("loam.serve.pacing.shed_total");
  const std::uint64_t shed_before = shed_counter->value();

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 7, 64);
  ASSERT_GE(queries.size(), 16u);
  std::vector<std::future<ServeDecision>> futures(queries.size());
  std::vector<char> admitted(queries.size(), 0);

  // Burst submission: all requests at once from 4 threads — far beyond the
  // cold-start admission window, so the controller must shed.
  const std::size_t n_threads = 4;
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < n_threads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = t; i < queries.size(); i += n_threads) {
        admitted[i] = service.try_submit(queries[i], &futures[i]) ? 1 : 0;
      }
    });
  }
  for (std::thread& th : submitters) th.join();

  std::uint64_t shed_seen = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(admitted[i]) << "request " << i << " was rejected";
    const ServeDecision d = futures[i].get();
    EXPECT_TRUE(d.paced);
    ASSERT_GE(d.chosen, 0);
    ASSERT_LT(d.chosen, static_cast<int>(d.generation.plans.size()));
    if (d.shed) {
      ++shed_seen;
      // Shed = the native fallback path: default plan, no model, no batch.
      EXPECT_EQ(d.model_version, -1);
      EXPECT_TRUE(d.predicted.empty());
      EXPECT_EQ(d.chosen, d.generation.default_index);
      EXPECT_EQ(d.batch_size, 0);
      EXPECT_EQ(d.generation.plans.size(), 1u);
    } else {
      EXPECT_EQ(d.model_version, 1);
      EXPECT_EQ(d.predicted.size(), d.generation.plans.size());
      EXPECT_GE(d.batch_size, 1);
    }
  }
  obs::set_metrics_enabled(false);

  const OptimizerService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, queries.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.shed, shed_seen);
  EXPECT_EQ(shed_counter->value() - shed_before, shed_seen);
  // A synchronized burst against the cold-start window must shed some load.
  EXPECT_GT(shed_seen, 0u);
  EXPECT_LT(shed_seen, queries.size());  // ... but not everything

  const OptimizerService::PacingSnapshot snap = service.pacing_snapshot();
  EXPECT_TRUE(snap.enabled);
  EXPECT_GT(snap.rounds, 0);
  EXPECT_GE(snap.batch_target, 1);
  EXPECT_GE(snap.cwnd, cfg.pacing.min_inflight);
  service.stop();
  EXPECT_EQ(service.pacing_snapshot().inflight, 0);
}

// The pacing house rule: pacing changes which path serves a request and when
// it is scored — never the scores. Whatever subset of a paced burst reaches
// the model must carry decisions bit-identical to an unpaced service scoring
// the same queries, at every submitter thread count.
TEST(OptimizerService, PacedModelDecisionsBitIdenticalToUnpaced) {
  ServeFixture fx("paceident");
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 7, 24);
  ASSERT_GE(queries.size(), 8u);

  ServeConfig base = fx.config();
  base.bootstrap_from_history = false;
  base.bootstrap_train = false;
  base.auto_retrain = false;
  base.max_batch = 4;
  base.queue_capacity = 8;

  // Reference: pacing off, served serially — every decision on the model.
  std::vector<ServeDecision> want(queries.size());
  {
    ServeConfig cfg = base;
    cfg.registry_root = fx.root + "/registry_ref";
    cfg.journal_path = fx.root + "/feedback_ref.jnl";
    OptimizerService service(fx.runtime.get(), cfg);
    service.start();
    ASSERT_EQ(
        service.publish_and_swap(untrained_model(service), approved_meta()),
        1);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      want[i] = service.optimize(queries[i]);
      ASSERT_EQ(want[i].model_version, 1);
    }
    service.stop();
  }

  for (const std::size_t n_threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(n_threads));
    ServeConfig cfg = base;
    cfg.pacing = test_pacing();
    cfg.registry_root =
        fx.root + "/registry_t" + std::to_string(n_threads);
    cfg.journal_path =
        fx.root + "/feedback_t" + std::to_string(n_threads) + ".jnl";
    OptimizerService service(fx.runtime.get(), cfg);
    service.start();
    ASSERT_EQ(
        service.publish_and_swap(untrained_model(service), approved_meta()),
        1);

    std::vector<std::future<ServeDecision>> futures(queries.size());
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < n_threads; ++t) {
      submitters.emplace_back([&, t] {
        for (std::size_t i = t; i < queries.size(); i += n_threads) {
          ASSERT_TRUE(service.try_submit(queries[i], &futures[i]));
        }
      });
    }
    for (std::thread& th : submitters) th.join();

    std::size_t model_served = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const ServeDecision d = futures[i].get();
      if (d.shed) continue;  // the fallback path is allowed to differ
      ++model_served;
      ASSERT_EQ(d.model_version, 1);
      // Bit-identical scoring: same candidates, same predictions (exact
      // double equality), same choice — regardless of how pacing batched or
      // interleaved the requests.
      ASSERT_EQ(d.generation.plans.size(), want[i].generation.plans.size());
      ASSERT_EQ(d.predicted.size(), want[i].predicted.size());
      for (std::size_t k = 0; k < d.predicted.size(); ++k) {
        EXPECT_EQ(d.predicted[k], want[i].predicted[k]);
      }
      EXPECT_EQ(d.chosen, want[i].chosen);
      EXPECT_EQ(d.predicted_cost, want[i].predicted_cost);
    }
    // The point of pacing: overload sheds instead of distorting the model
    // path, but an un-overloaded trickle still reaches the model.
    EXPECT_GT(model_served, 0u);
    service.stop();
  }
}

// The injected virtual clock drives every latency field: with a clock that
// advances exactly 1ms per reading, queue_seconds/total_seconds come out as
// exact step multiples — impossible under a wall clock, so this proves no
// code path on the decision's timeline consults real time.
TEST(OptimizerService, VirtualClockMakesLatencyFieldsDeterministic) {
  ServeFixture fx("virtclock");
  ServeConfig cfg = fx.config();
  cfg.bootstrap_from_history = false;
  cfg.bootstrap_train = false;
  cfg.auto_retrain = false;
  cfg.pacing = test_pacing();
  constexpr std::int64_t kStepNs = 1'000'000;  // 1ms per clock reading
  auto ticks = std::make_shared<std::atomic<std::int64_t>>(0);
  cfg.clock = [ticks] {
    return ticks->fetch_add(kStepNs, std::memory_order_relaxed) + kStepNs;
  };
  OptimizerService service(fx.runtime.get(), cfg);
  service.start();

  std::vector<warehouse::Query> queries = fx.runtime->make_queries(5, 5, 6);
  ASSERT_GE(queries.size(), 2u);
  for (const warehouse::Query& q : queries) {
    const ServeDecision d = service.optimize(q);
    // Enqueue, pickup, and completion are distinct readings of a strictly
    // increasing clock: at least one step in the queue, two end to end.
    EXPECT_GE(d.queue_seconds, 1e-9 * static_cast<double>(kStepNs));
    EXPECT_GE(d.total_seconds,
              d.queue_seconds + 1e-9 * static_cast<double>(kStepNs));
    const double queue_ms = d.queue_seconds * 1e3;
    const double total_ms = d.total_seconds * 1e3;
    EXPECT_NEAR(queue_ms, std::round(queue_ms), 1e-9);
    EXPECT_NEAR(total_ms, std::round(total_ms), 1e-9);
  }

  // The pacing filters consumed the same virtual timeline: the windowed min
  // delay is a whole number of steps too.
  const OptimizerService::PacingSnapshot snap = service.pacing_snapshot();
  EXPECT_GT(snap.rounds, 0);
  EXPECT_GT(snap.est_min_delay_seconds, 0.0);
  const double delay_ms = snap.est_min_delay_seconds * 1e3;
  EXPECT_NEAR(delay_ms, std::round(delay_ms), 1e-9);
  service.stop();
}

}  // namespace
}  // namespace loam::serve
