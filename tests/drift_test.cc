// Tests of loam::drift — the drift-script parser's loud-failure policy, the
// fork-keyed event scheduler's order independence, in-place schema
// migrations, and the modular lifelong learner's structural isolation:
// drift (and retraining, and rollback) on project A must be invisible to
// project B's converged module, and a fixed (config, script, seed) must
// replay to bit-identical decisions.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "drift/modular.h"
#include "drift/scenario.h"
#include "drift/script.h"
#include "util/rng.h"
#include "warehouse/workload.h"

namespace loam::drift {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("loam_drift_test_" + tag + "_" +
                      std::to_string(::getpid()));
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

warehouse::ProjectArchetype small_archetype(const std::string& name,
                                            std::uint64_t seed) {
  warehouse::ProjectArchetype a;
  a.name = name;
  a.seed = seed;
  a.n_tables = 10;
  a.avg_columns_per_table = 8;
  a.n_templates = 6;
  a.queries_per_day = 50.0;
  a.stats_coverage = 0.3;
  a.cluster_machines = 12;
  return a;
}

LearnerConfig small_learner_config(const std::string& state_dir,
                                   bool modular = true) {
  LearnerConfig cfg;
  cfg.modular = modular;
  cfg.state_dir = state_dir;
  cfg.predictor.epochs = 3;
  cfg.predictor.hidden_dim = 12;
  cfg.predictor.embed_dim = 8;
  cfg.predictor.tcn_layers = 2;
  cfg.predictor.batch_size = 8;
  cfg.predictor.adversarial = false;
  cfg.predictor.num_threads = 1;
  cfg.explorer.top_k = 3;
  cfg.explorer.card_scales = {0.5};
  cfg.explorer.num_threads = 1;
  // Lenient gate: these tests exercise the swap/rollback MECHANICS, not
  // model quality, so approvals should be the common case.
  cfg.gate.sample_queries = 4;
  cfg.gate.replay_runs = 2;
  cfg.gate.replay_threads = 1;
  cfg.gate.max_regression = 10.0;
  cfg.gate.max_regression_ratio = 100.0;
  cfg.retrain_min_fresh = 8;
  cfg.window_max_executed = 64;
  cfg.incremental_epochs = 2;
  cfg.min_train_examples = 8;
  return cfg;
}

ScenarioConfig small_scenario_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.queries_per_day = 4;
  cfg.replay_runs = 1;
  cfg.seed = seed;
  return cfg;
}

// ---------------------------------------------------------------------------
// Drift scripts: parse fidelity and the loud-failure policy
// ---------------------------------------------------------------------------

TEST(DriftScript, ParsesEveryKindWithDefaultsAndOverrides) {
  const DriftScript s = DriftScript::parse(R"({"events": [
    {"kind": "schema_migration", "day": 3, "project": "a",
     "table": 5, "add_columns": 3, "drop_columns": 0, "row_growth": 4.0},
    {"kind": "flash_crowd", "day": 4, "project": "a",
     "multiplier": 6.5, "duration_days": 2},
    {"kind": "template_rotation", "day": 5, "project": "b", "count": 3},
    {"kind": "onboard", "day": 6, "project": "c"},
    {"kind": "offboard", "project": "c"}
  ]})");
  ASSERT_EQ(s.events.size(), 5u);
  EXPECT_EQ(s.events[0].kind, DriftEventKind::kSchemaMigration);
  EXPECT_EQ(s.events[0].day, 3);
  EXPECT_EQ(s.events[0].project, "a");
  EXPECT_EQ(s.events[0].table_index, 5);
  EXPECT_EQ(s.events[0].add_columns, 3);
  EXPECT_EQ(s.events[0].drop_columns, 0);
  EXPECT_EQ(s.events[0].row_growth, 4.0);
  EXPECT_EQ(s.events[1].kind, DriftEventKind::kFlashCrowd);
  EXPECT_EQ(s.events[1].multiplier, 6.5);
  EXPECT_EQ(s.events[1].duration_days, 2);
  EXPECT_EQ(s.events[2].rotate_count, 3);
  EXPECT_EQ(s.events[3].kind, DriftEventKind::kOnboard);
  EXPECT_EQ(s.events[4].day, 0);  // day defaults to 0

  // to_json round-trips through parse.
  const DriftScript back = DriftScript::parse(s.to_json());
  ASSERT_EQ(back.events.size(), s.events.size());
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    EXPECT_EQ(back.events[i].kind, s.events[i].kind) << i;
    EXPECT_EQ(back.events[i].day, s.events[i].day) << i;
    EXPECT_EQ(back.events[i].project, s.events[i].project) << i;
  }
}

TEST(DriftScript, RejectsUnknownKeysNamingTheOffender) {
  try {
    DriftScript::parse(R"({"events": [
      {"kind": "flash_crowd", "day": 1, "project": "a", "multipler": 2.0}
    ]})");
    FAIL() << "typo'd key must not parse";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("multipler"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("events[0]"), std::string::npos);
  }
}

TEST(DriftScript, RejectsUnknownTopLevelKeysKindsAndMissingFields) {
  EXPECT_THROW(DriftScript::parse(R"({"events": [], "extra": 1})"),
               std::runtime_error);
  EXPECT_THROW(DriftScript::parse(R"({"events": [
    {"kind": "schema_migraton", "project": "a"}]})"),
               std::runtime_error);
  // Missing kind / missing project.
  EXPECT_THROW(DriftScript::parse(R"({"events": [{"project": "a"}]})"),
               std::runtime_error);
  EXPECT_THROW(
      DriftScript::parse(R"({"events": [{"kind": "flash_crowd"}]})"),
      std::runtime_error);
  // Missing the events array entirely.
  EXPECT_THROW(DriftScript::parse(R"({})"), std::runtime_error);
}

TEST(DriftScript, RejectsMalformedJsonAndBadValues) {
  EXPECT_THROW(DriftScript::parse("{\"events\": ["), std::runtime_error);
  EXPECT_THROW(DriftScript::parse("not json at all"), std::runtime_error);
  EXPECT_THROW(DriftScript::parse(R"({"events": [
    {"kind": "flash_crowd", "project": "a", "multiplier": -1.0}]})"),
               std::runtime_error);
  EXPECT_THROW(DriftScript::parse(R"({"events": [
    {"kind": "schema_migration", "project": "a", "day": -2}]})"),
               std::runtime_error);
  EXPECT_THROW(DriftScript::parse(R"({"events": [
    {"kind": "template_rotation", "project": "a", "count": 0}]})"),
               std::runtime_error);
  // Non-integer where an integer is required.
  EXPECT_THROW(DriftScript::parse(R"({"events": [
    {"kind": "flash_crowd", "project": "a", "day": 1.5}]})"),
               std::runtime_error);
}

TEST(DriftScript, LoadRejectsMissingFile) {
  EXPECT_THROW(DriftScript::load("/nonexistent/drift_script.json"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Fork-keyed event scheduler: stream independence
// ---------------------------------------------------------------------------

TEST(EventScheduler, ForkStreamsIgnoreParentDrawsAndDecorrelate) {
  Rng parent_a(42);
  Rng parent_b(42);
  for (int i = 0; i < 100; ++i) parent_b.uniform();  // consume
  // fork(i) is keyed by (construction seed, i) alone: identical streams no
  // matter how much the parent has drawn — the property the scheduler leans
  // on to make event effects independent of the surrounding schedule.
  Rng fa = parent_a.fork(3);
  Rng fb = parent_b.fork(3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(fa.uniform_int(0, 1 << 30), fb.uniform_int(0, 1 << 30));
  }
  Rng f0 = parent_a.fork(0);
  Rng f1 = parent_a.fork(1);
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (f0.uniform_int(0, 1 << 30) == f1.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 2);  // distinct indices give decorrelated streams
}

TEST(EventScheduler, EventEffectIndependentOfOtherScheduledEvents) {
  // Two engines, same seed. Engine 2's script carries an EXTRA rotation on
  // project B that fires EARLIER in time (day 1) but sits LATER in the
  // script (index 1). The migration keeps script index 0 in both, so its
  // fork stream — and therefore the exact columns it synthesizes on A —
  // must be identical, even though engine 2 applied another event first.
  DriftEvent migration;
  migration.kind = DriftEventKind::kSchemaMigration;
  migration.day = 2;
  migration.project = "A";
  migration.table_index = 1;
  migration.add_columns = 2;
  migration.drop_columns = 1;
  migration.row_growth = 3.0;

  DriftEvent rotation;
  rotation.kind = DriftEventKind::kTemplateRotation;
  rotation.day = 1;
  rotation.project = "B";
  rotation.rotate_count = 2;

  std::vector<const warehouse::Catalog*> catalogs;
  std::vector<std::string> dirs;
  std::vector<std::unique_ptr<ModularLearner>> learners;
  std::vector<std::unique_ptr<ScenarioEngine>> engines;
  for (int variant = 0; variant < 2; ++variant) {
    dirs.push_back(temp_dir("sched" + std::to_string(variant)));
    LearnerConfig lc = small_learner_config(dirs.back());
    lc.retrain_min_fresh = 100000;  // no retrains: isolate the scheduler
    learners.push_back(std::make_unique<ModularLearner>(lc));
    ScenarioConfig sc = small_scenario_config(909);
    sc.queries_per_day = 2;
    engines.push_back(
        std::make_unique<ScenarioEngine>(sc, learners.back().get()));
    engines.back()->register_archetype(small_archetype("A", 5));
    engines.back()->register_archetype(small_archetype("B", 6));
    engines.back()->add_project("A");
    engines.back()->add_project("B");
    DriftScript script;
    script.events.push_back(migration);
    if (variant == 1) script.events.push_back(rotation);
    engines.back()->set_script(script);
    for (int day = 0; day < 3; ++day) engines.back()->step();
    catalogs.push_back(&engines.back()->runtime("A")->project().catalog);
  }

  ASSERT_EQ(catalogs[0]->table_count(), catalogs[1]->table_count());
  bool saw_migrated = false;
  for (int id = 0; id < catalogs[0]->table_count(); ++id) {
    const warehouse::Table& t0 = catalogs[0]->table(id);
    const warehouse::Table& t1 = catalogs[1]->table(id);
    ASSERT_EQ(t0.schema_epoch, t1.schema_epoch) << t0.name;
    ASSERT_EQ(t0.row_count, t1.row_count) << t0.name;
    ASSERT_EQ(t0.columns.size(), t1.columns.size()) << t0.name;
    for (std::size_t c = 0; c < t0.columns.size(); ++c) {
      EXPECT_EQ(t0.columns[c].name, t1.columns[c].name);
      EXPECT_EQ(t0.columns[c].ndv, t1.columns[c].ndv);
      EXPECT_EQ(t0.columns[c].zipf_skew, t1.columns[c].zipf_skew);
    }
    if (t0.schema_epoch > 0) saw_migrated = true;
  }
  EXPECT_TRUE(saw_migrated);
  for (auto& d : dirs) fs::remove_all(d);
}

// ---------------------------------------------------------------------------
// Schema migration mechanics
// ---------------------------------------------------------------------------

TEST(SchemaMigration, KeepsWorkloadInstantiableAndMirrorsTwins) {
  warehouse::WorkloadGenerator gen(3);
  warehouse::ProjectArchetype a = small_archetype("mig", 17);
  a.snapshot_fraction = 0.3;  // make twin mirroring observable
  warehouse::Project project = gen.make_project(a);

  // Pick a base table that has snapshot twins if any exist.
  int target = -1;
  for (int id = 0; id < project.catalog.table_count() && target < 0; ++id) {
    for (int twin = 0; twin < project.catalog.table_count(); ++twin) {
      if (project.catalog.table(twin).alias_of == id) {
        target = id;
        break;
      }
    }
  }
  if (target < 0) target = 0;

  Rng rng(99);
  const std::size_t before_cols = project.catalog.table(target).columns.size();
  const warehouse::TableMigration m =
      warehouse::migrate_table(project, target, 2, 1, 4.0, rng);
  EXPECT_EQ(m.table_id, target);
  EXPECT_EQ(m.schema_epoch, 1);
  EXPECT_EQ(project.catalog.table(target).schema_epoch, 1);
  EXPECT_EQ(m.added_columns, 2);
  EXPECT_EQ(m.dropped_columns, 1);
  EXPECT_EQ(project.catalog.table(target).columns.size(), before_cols + 1);
  EXPECT_EQ(m.new_rows, m.old_rows * 4);
  // Statistics are NOT refreshed — staleness is the drift.
  if (project.catalog.stats(target).available) {
    EXPECT_NE(project.catalog.stats(target).observed_rows, m.new_rows);
  }
  // Twins mirror shape and epoch.
  for (int id = 0; id < project.catalog.table_count(); ++id) {
    const warehouse::Table& t = project.catalog.table(id);
    if (t.alias_of != target) continue;
    EXPECT_EQ(t.schema_epoch, 1);
    EXPECT_EQ(t.row_count, m.new_rows);
    EXPECT_EQ(t.columns.size(), project.catalog.table(target).columns.size());
  }

  // Aggressive drops on EVERY base table, then the whole workload must still
  // instantiate and plan without throwing.
  for (int id = 0; id < project.catalog.table_count(); ++id) {
    if (project.catalog.table(id).alias_of >= 0) continue;
    warehouse::migrate_table(project, id, 0, 100, 1.0, rng);
    EXPECT_GE(project.catalog.table(id).columns.size(), 3u);
  }
  Rng qrng(7);
  const std::vector<warehouse::Query> day = gen.day_workload(project, 3, qrng);
  ASSERT_FALSE(day.empty());
  warehouse::NativeOptimizer opt(project.catalog);
  for (const warehouse::Query& q : day) {
    EXPECT_NO_THROW(opt.optimize(q));
  }
}

// ---------------------------------------------------------------------------
// Modular learner: structural isolation + bit identity
// ---------------------------------------------------------------------------

struct TwoProjectFixture {
  std::string dir;
  std::unique_ptr<core::ProjectRuntime> rt_a;
  std::unique_ptr<core::ProjectRuntime> rt_b;
  std::unique_ptr<ModularLearner> learner;

  explicit TwoProjectFixture(const std::string& tag, bool modular = true) {
    dir = temp_dir(tag);
    core::RuntimeConfig rc_a;
    rc_a.seed = 21;
    core::RuntimeConfig rc_b;
    rc_b.seed = 22;
    rt_a = std::make_unique<core::ProjectRuntime>(small_archetype("A", 5), rc_a);
    rt_b = std::make_unique<core::ProjectRuntime>(small_archetype("B", 6), rc_b);
    learner = std::make_unique<ModularLearner>(
        small_learner_config(dir, modular));
    learner->onboard("A", rt_a.get());
    learner->onboard("B", rt_b.get());
  }

  ~TwoProjectFixture() { fs::remove_all(dir); }

  // Serves one day of `n` queries for `key`, journaling the explorer's rough
  // cost as the realized cost (the mechanics under test do not need real
  // replays).
  void serve_day(const std::string& key, core::ProjectRuntime* rt, int day,
                 int n) {
    for (warehouse::Query& q : rt->make_queries(day, day, n)) {
      ModularLearner::Decision d = learner->optimize(key, q);
      const double cost =
          d.generation.rough_costs.at(static_cast<std::size_t>(d.chosen));
      learner->record_feedback(key, d, cost, day);
    }
  }
};

void expect_status_equal(const ModuleStatus& x, const ModuleStatus& y) {
  EXPECT_EQ(x.version, y.version);
  EXPECT_EQ(x.epoch, y.epoch);
  EXPECT_EQ(x.executed_records, y.executed_records);
  EXPECT_EQ(x.retrains, y.retrains);
  EXPECT_EQ(x.approvals, y.approvals);
  EXPECT_EQ(x.rejections, y.rejections);
  EXPECT_EQ(x.rollbacks, y.rollbacks);
  EXPECT_EQ(x.watermark_day, y.watermark_day);
}

TEST(ModularLearner, DriftRetrainAndRollbackOnANeverTouchB) {
  TwoProjectFixture fx("isolation");
  for (int day = 0; day < 2; ++day) {
    fx.serve_day("A", fx.rt_a.get(), day, 6);
    fx.serve_day("B", fx.rt_b.get(), day, 6);
  }

  const ModuleStatus b_before = fx.learner->status("B");
  EXPECT_EQ(b_before.executed_records, 12u);

  // Retrain A (bootstrap fit + gate + publish)...
  const ModularLearner::RetrainReport r1 = fx.learner->retrain_module("A", 1);
  EXPECT_TRUE(r1.attempted);
  EXPECT_FALSE(r1.incremental);
  EXPECT_EQ(r1.examples, 12);
  // ...then drift A's catalog and retrain again, incrementally, from A's own
  // journal only.
  Rng rng(5);
  warehouse::migrate_table(fx.rt_a->project(), 0, 2, 1, 4.0, rng);
  fx.serve_day("A", fx.rt_a.get(), 2, 6);
  const ModularLearner::RetrainReport r2 = fx.learner->retrain_module("A", 2);
  EXPECT_TRUE(r2.attempted);
  if (r1.approved) EXPECT_TRUE(r2.incremental);

  // Structural isolation: nothing about B moved — not its version, not its
  // gate counters, not its journal.
  expect_status_equal(fx.learner->status("B"), b_before);

  // Rollback on A is equally invisible to B.
  const ModuleStatus a_before_rb = fx.learner->status("A");
  const int rolled = fx.learner->rollback_module("A");
  if (a_before_rb.version > 0) {
    EXPECT_EQ(rolled, a_before_rb.version);
    const ModuleStatus a_after = fx.learner->status("A");
    EXPECT_EQ(a_after.rollbacks, a_before_rb.rollbacks + 1);
    EXPECT_LT(a_after.version, a_before_rb.version);
  } else {
    EXPECT_EQ(rolled, 0);
  }
  expect_status_equal(fx.learner->status("B"), b_before);
  EXPECT_EQ(fx.learner->status("B").rollbacks, 0);
}

TEST(ModularLearner, OffboardRetiresModuleAndReonboardResumes) {
  TwoProjectFixture fx("offboard");
  fx.serve_day("A", fx.rt_a.get(), 0, 10);
  const ModularLearner::RetrainReport r = fx.learner->retrain_module("A", 0);
  fx.learner->offboard("A");
  EXPECT_FALSE(fx.learner->has_module("A"));
  EXPECT_TRUE(fx.learner->has_module("B"));
  EXPECT_THROW(fx.learner->optimize("A", warehouse::Query{}),
               std::runtime_error);

  // Re-onboarding resumes from the module's durable registry + journal.
  fx.learner->onboard("A", fx.rt_a.get());
  const ModuleStatus a = fx.learner->status("A");
  EXPECT_EQ(a.executed_records, 10u);
  if (r.approved) EXPECT_EQ(a.version, r.version);
}

TEST(ModularLearner, MonolithicBaselinePoolsJournalAndGatesGlobally) {
  TwoProjectFixture fx("mono", /*modular=*/false);
  EXPECT_FALSE(fx.learner->modular());
  for (int day = 0; day < 2; ++day) {
    fx.serve_day("A", fx.rt_a.get(), day, 5);
    fx.serve_day("B", fx.rt_b.get(), day, 5);
  }
  // One pooled journal: both projects' records land in the shared log, and
  // status reads the shared state through any module key.
  EXPECT_EQ(fx.learner->status("A").executed_records, 20u);
  EXPECT_EQ(fx.learner->status("B").executed_records, 20u);

  const ModularLearner::RetrainReport r = fx.learner->retrain_module("*", 1);
  EXPECT_TRUE(r.attempted);
  EXPECT_EQ(r.key, "*");
  EXPECT_FALSE(r.incremental);  // the baseline always refits from scratch
  EXPECT_EQ(r.examples, 20);
  // A global swap (or rejection) is visible through EVERY module's status —
  // the per-project isolation the modular learner provides is exactly what
  // the monolith cannot.
  expect_status_equal(fx.learner->status("A"), fx.learner->status("B"));
  if (r.approved) {
    EXPECT_EQ(fx.learner->status("A").version, r.version);
    EXPECT_EQ(fx.learner->status("B").version, r.version);
  }
}

// ---------------------------------------------------------------------------
// Scenario engine end-to-end
// ---------------------------------------------------------------------------

TEST(ScenarioEngine, FlashCrowdScalesVolumeOnlyForItsDuration) {
  const std::string dir = temp_dir("crowd");
  LearnerConfig lc = small_learner_config(dir);
  lc.retrain_min_fresh = 100000;
  ModularLearner learner(lc);
  ScenarioConfig sc = small_scenario_config(31);
  ScenarioEngine engine(sc, &learner);
  engine.register_archetype(small_archetype("A", 5));
  engine.register_archetype(small_archetype("B", 6));
  engine.add_project("A");
  engine.add_project("B");

  DriftScript script;
  DriftEvent crowd;
  crowd.kind = DriftEventKind::kFlashCrowd;
  crowd.day = 1;
  crowd.project = "A";
  crowd.multiplier = 3.0;
  crowd.duration_days = 1;
  script.events.push_back(crowd);
  engine.set_script(script);

  const ScenarioEngine::DayStats d0 = engine.step();
  EXPECT_EQ(d0.queries, 8);  // 2 projects x queries_per_day
  EXPECT_EQ(d0.events_applied, 0);
  const ScenarioEngine::DayStats d1 = engine.step();
  EXPECT_EQ(d1.events_applied, 1);
  EXPECT_EQ(d1.queries, 16);  // A serves 4 x 3, B stays at 4
  const ScenarioEngine::DayStats d2 = engine.step();
  EXPECT_EQ(d2.queries, 8);  // crowd expired
  EXPECT_EQ(engine.applied_events(), 1);
  fs::remove_all(dir);
}

TEST(ScenarioEngine, ScriptedOnboardOffboardDriveTheModuleTable) {
  const std::string dir = temp_dir("onoff");
  LearnerConfig lc = small_learner_config(dir);
  lc.retrain_min_fresh = 100000;
  ModularLearner learner(lc);
  ScenarioEngine engine(small_scenario_config(47), &learner);
  engine.register_archetype(small_archetype("A", 5));
  engine.register_archetype(small_archetype("C", 7));
  engine.add_project("A");

  DriftScript script;
  DriftEvent on;
  on.kind = DriftEventKind::kOnboard;
  on.day = 1;
  on.project = "C";
  DriftEvent off;
  off.kind = DriftEventKind::kOffboard;
  off.day = 2;
  off.project = "C";
  script.events = {on, off};
  engine.set_script(script);

  EXPECT_EQ(engine.step().queries, 4);  // day 0: A alone
  EXPECT_FALSE(learner.has_module("C"));
  EXPECT_EQ(engine.step().queries, 8);  // day 1: A + onboarded C
  EXPECT_TRUE(learner.has_module("C"));
  EXPECT_NE(engine.runtime("C"), nullptr);
  EXPECT_EQ(engine.step().queries, 4);  // day 2: C offboarded before serving
  EXPECT_FALSE(learner.has_module("C"));
  EXPECT_EQ(engine.runtime("C"), nullptr);
  EXPECT_EQ(engine.projects(), std::vector<std::string>{"A"});
  fs::remove_all(dir);
}

TEST(ScenarioEngine, EventOnUnknownProjectFailsLoudly) {
  const std::string dir = temp_dir("ghost");
  LearnerConfig lc = small_learner_config(dir);
  ModularLearner learner(lc);
  ScenarioEngine engine(small_scenario_config(53), &learner);
  engine.register_archetype(small_archetype("A", 5));
  engine.add_project("A");
  DriftScript script;
  DriftEvent ev;
  ev.kind = DriftEventKind::kFlashCrowd;
  ev.day = 0;
  ev.project = "ghost";
  script.events.push_back(ev);
  engine.set_script(script);
  EXPECT_THROW(engine.step(), std::runtime_error);
  fs::remove_all(dir);
}

TEST(ScenarioEngine, FixedConfigReplaysBitIdentically) {
  // Two fully independent stacks, same (config, seed, script): every served
  // day must agree bit-for-bit — replayed costs, regression ratios, retrain
  // verdicts, module versions. This is the house determinism rule extended
  // across the whole drift subsystem.
  DriftScript script;
  DriftEvent migration;
  migration.kind = DriftEventKind::kSchemaMigration;
  migration.day = 2;
  migration.project = "A";
  migration.add_columns = 2;
  migration.drop_columns = 1;
  migration.row_growth = 3.0;
  DriftEvent rotation;
  rotation.kind = DriftEventKind::kTemplateRotation;
  rotation.day = 3;
  rotation.project = "B";
  script.events = {migration, rotation};

  std::vector<std::vector<ScenarioEngine::DayStats>> runs;
  std::vector<std::string> states;
  for (int run = 0; run < 2; ++run) {
    const std::string dir = temp_dir("bitid" + std::to_string(run));
    LearnerConfig lc = small_learner_config(dir);
    ModularLearner learner(lc);
    ScenarioEngine engine(small_scenario_config(777), &learner);
    engine.register_archetype(small_archetype("A", 5));
    engine.register_archetype(small_archetype("B", 6));
    engine.add_project("A");
    engine.add_project("B");
    engine.set_script(script);
    std::vector<ScenarioEngine::DayStats> days;
    for (int day = 0; day < 5; ++day) days.push_back(engine.step());
    runs.push_back(std::move(days));
    states.push_back(learner.state_json());
    fs::remove_all(dir);
  }

  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t d = 0; d < runs[0].size(); ++d) {
    const ScenarioEngine::DayStats& x = runs[0][d];
    const ScenarioEngine::DayStats& y = runs[1][d];
    EXPECT_EQ(x.queries, y.queries) << "day " << d;
    EXPECT_EQ(x.events_applied, y.events_applied) << "day " << d;
    ASSERT_EQ(x.chosen_cost.size(), y.chosen_cost.size()) << "day " << d;
    for (const auto& [name, cost] : x.chosen_cost) {
      ASSERT_TRUE(y.chosen_cost.count(name));
      // Bitwise double equality: same decisions, same replays.
      EXPECT_EQ(cost, y.chosen_cost.at(name)) << name << " day " << d;
      EXPECT_EQ(x.default_cost.at(name), y.default_cost.at(name))
          << name << " day " << d;
      EXPECT_EQ(x.regression.at(name), y.regression.at(name))
          << name << " day " << d;
    }
    ASSERT_EQ(x.retrains.size(), y.retrains.size()) << "day " << d;
    for (std::size_t r = 0; r < x.retrains.size(); ++r) {
      EXPECT_EQ(x.retrains[r].key, y.retrains[r].key);
      EXPECT_EQ(x.retrains[r].attempted, y.retrains[r].attempted);
      EXPECT_EQ(x.retrains[r].approved, y.retrains[r].approved);
      EXPECT_EQ(x.retrains[r].version, y.retrains[r].version);
      EXPECT_EQ(x.retrains[r].gate_gain, y.retrains[r].gate_gain);
    }
  }
  EXPECT_EQ(states[0], states[1]);
}

}  // namespace
}  // namespace loam::drift
