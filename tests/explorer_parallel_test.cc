// Determinism contract of parallel candidate exploration: explore() with
// num_threads in {1, 2, 8} yields IDENTICAL candidate sets — same plans
// (signatures), same knob vectors, same ordering, same default index, and
// bit-exact rough costs — across many random queries and project seeds. The
// thread count is a throughput knob, never a semantics knob.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/explorer.h"
#include "obs/obs.h"
#include "warehouse/workload.h"

namespace loam::core {
namespace {

struct Fixture {
  warehouse::WorkloadGenerator gen;
  warehouse::Project project;
  std::unique_ptr<warehouse::NativeOptimizer> optimizer;

  explicit Fixture(std::uint64_t seed, double stats_coverage = 0.3) : gen(seed) {
    warehouse::ProjectArchetype a;
    a.name = "parallel";
    a.seed = seed + 1;
    a.n_tables = 14;
    a.n_templates = 10;
    a.stats_coverage = stats_coverage;
    a.join_tables_mean = 4.0;
    project = gen.make_project(a);
    optimizer = std::make_unique<warehouse::NativeOptimizer>(project.catalog);
  }

  warehouse::Query query(int t) {
    Rng rng(500 + static_cast<std::uint64_t>(t));
    return gen.instantiate(project,
                           project.templates[static_cast<std::size_t>(t) %
                                             project.templates.size()],
                           0, rng);
  }
};

void expect_identical(const CandidateGeneration& a, const CandidateGeneration& b,
                      const char* label) {
  ASSERT_EQ(a.plans.size(), b.plans.size()) << label;
  ASSERT_EQ(a.knobs.size(), b.knobs.size()) << label;
  ASSERT_EQ(a.rough_costs.size(), b.rough_costs.size()) << label;
  EXPECT_EQ(a.default_index, b.default_index) << label;
  EXPECT_EQ(a.trials, b.trials) << label;
  for (std::size_t c = 0; c < a.plans.size(); ++c) {
    EXPECT_EQ(a.plans[c].signature(), b.plans[c].signature())
        << label << " candidate " << c;
    EXPECT_EQ(a.knobs[c], b.knobs[c]) << label << " candidate " << c;
    // Bit-exact: the parallel merge must reproduce the serial arithmetic,
    // not merely approximate it.
    EXPECT_EQ(a.rough_costs[c], b.rough_costs[c]) << label << " candidate " << c;
    // The annotated cardinalities feed downstream encodings — compare the
    // per-node estimates too.
    ASSERT_EQ(a.plans[c].node_count(), b.plans[c].node_count());
    for (int n = 0; n < a.plans[c].node_count(); ++n) {
      EXPECT_EQ(a.plans[c].node(n).est_rows, b.plans[c].node(n).est_rows)
          << label << " candidate " << c << " node " << n;
    }
  }
}

TEST(ExplorerParallel, ThreadCountNeverChangesResults) {
  int compared = 0;
  // 4 project seeds x 6 queries each = 24 random (project, query) cases.
  for (std::uint64_t seed : {11ull, 23ull, 47ull, 91ull}) {
    Fixture fx(seed, /*stats_coverage=*/seed % 2 == 0 ? 0.0 : 0.6);
    ExplorerConfig serial;
    serial.num_threads = 1;
    serial.risky_trials = true;  // widest trial list, including scaled faces
    ExplorerConfig two = serial;
    two.num_threads = 2;
    ExplorerConfig eight = serial;
    eight.num_threads = 8;
    PlanExplorer e1(fx.optimizer.get(), serial);
    PlanExplorer e2(fx.optimizer.get(), two);
    PlanExplorer e8(fx.optimizer.get(), eight);
    for (int t = 0; t < 6; ++t) {
      const warehouse::Query q = fx.query(t);
      const CandidateGeneration g1 = e1.explore(q);
      const CandidateGeneration g2 = e2.explore(q);
      const CandidateGeneration g8 = e8.explore(q);
      expect_identical(g1, g2, "1-vs-2");
      expect_identical(g1, g8, "1-vs-8");
      ++compared;
    }
  }
  EXPECT_GE(compared, 20);
}

TEST(ExplorerParallel, RepeatedParallelRunsAreStable) {
  // The same parallel explorer re-run on the same query is reproducible —
  // scheduling order must not leak into results.
  Fixture fx(7);
  ExplorerConfig cfg;
  cfg.num_threads = 8;
  PlanExplorer explorer(fx.optimizer.get(), cfg);
  for (int t = 0; t < 4; ++t) {
    const warehouse::Query q = fx.query(t);
    const CandidateGeneration first = explorer.explore(q);
    for (int rep = 0; rep < 3; ++rep) {
      expect_identical(first, explorer.explore(q), "repeat");
    }
  }
}

TEST(ExplorerParallel, DefaultConfigResolvesHardwareConcurrency) {
  Fixture fx(3);
  PlanExplorer defaulted(fx.optimizer.get());
  EXPECT_GE(defaulted.num_threads(), 1);
  ExplorerConfig one;
  one.num_threads = 1;
  PlanExplorer legacy(fx.optimizer.get(), one);
  EXPECT_EQ(legacy.num_threads(), 1);
  // Default and legacy agree on results regardless of what the hardware
  // resolution picked.
  for (int t = 0; t < 3; ++t) {
    const warehouse::Query q = fx.query(t);
    expect_identical(legacy.explore(q), defaulted.explore(q), "default-vs-1");
  }
}

TEST(ExplorerParallel, ObsEnabledLeavesResultsBitIdentical) {
  // Instrumentation (metrics + tracing) reads clocks and bumps atomics but
  // never draws from an RNG stream, so candidate sets are bit-identical with
  // the full obs stack on — serial and parallel alike.
  Fixture fx(29, /*stats_coverage=*/0.4);
  for (int threads : {1, 4}) {
    ExplorerConfig cfg;
    cfg.num_threads = threads;
    cfg.risky_trials = true;
    PlanExplorer explorer(fx.optimizer.get(), cfg);
    for (int t = 0; t < 4; ++t) {
      const warehouse::Query q = fx.query(t);
      obs::set_metrics_enabled(false);
      obs::set_tracing_enabled(false);
      const CandidateGeneration plain = explorer.explore(q);
      obs::set_metrics_enabled(true);
      obs::set_tracing_enabled(true);
      const CandidateGeneration traced = explorer.explore(q);
      obs::set_metrics_enabled(false);
      obs::set_tracing_enabled(false);
      expect_identical(plain, traced, threads == 1 ? "obs-serial" : "obs-parallel");
    }
  }
  obs::Tracer::instance().reset();
}

TEST(ExplorerParallel, RoughCostsAlignWithPlans) {
  Fixture fx(19);
  ExplorerConfig cfg;
  cfg.num_threads = 4;
  PlanExplorer explorer(fx.optimizer.get(), cfg);
  for (int t = 0; t < 4; ++t) {
    const CandidateGeneration gen = explorer.explore(fx.query(t));
    ASSERT_EQ(gen.rough_costs.size(), gen.plans.size());
    for (std::size_t c = 0; c < gen.plans.size(); ++c) {
      EXPECT_EQ(gen.rough_costs[c], fx.optimizer->rough_cost(gen.plans[c]));
    }
  }
}

}  // namespace
}  // namespace loam::core
