// Tests of the pre-deployment flighting gate (Section 3).
#include <gtest/gtest.h>

#include "core/gate.h"

namespace loam::core {
namespace {

struct GateFixture {
  std::unique_ptr<ProjectRuntime> runtime;

  GateFixture() {
    warehouse::ProjectArchetype a;
    a.name = "gate";
    a.seed = 5;
    a.n_tables = 14;
    a.n_templates = 8;
    a.queries_per_day = 50.0;
    a.stats_coverage = 0.15;
    a.cluster_machines = 24;
    RuntimeConfig rc;
    rc.seed = 31;
    runtime = std::make_unique<ProjectRuntime>(a, rc);
    runtime->simulate_history(5, 50);
  }

  LoamConfig config() const {
    LoamConfig cfg;
    cfg.train_first_day = 0;
    cfg.train_last_day = 4;
    cfg.max_train_queries = 200;
    cfg.candidate_sample_queries = 15;
    cfg.predictor.epochs = 6;
    cfg.predictor.hidden_dim = 24;
    return cfg;
  }
};

TEST(DeploymentGate, ReportsCoherentNumbers) {
  GateFixture fx;
  LoamDeployment loam(fx.runtime.get(), fx.config());
  loam.train();
  DeploymentGateConfig gc;
  gc.sample_queries = 10;
  gc.replay_runs = 3;
  const DeploymentGateReport report = evaluate_deployment(*fx.runtime, loam, gc);
  EXPECT_GT(report.queries, 0);
  EXPECT_LE(report.improved + report.regressed, report.queries);
  EXPECT_GT(report.default_cost, 0.0);
  EXPECT_GT(report.model_cost, 0.0);
  EXPECT_NEAR(report.gain,
              (report.default_cost - report.model_cost) / report.default_cost,
              1e-9);
  EXPECT_FALSE(report.to_string().empty());
}

TEST(DeploymentGate, ApprovalFollowsThresholds) {
  GateFixture fx;
  LoamDeployment loam(fx.runtime.get(), fx.config());
  loam.train();
  // A gate that tolerates any regression approves everything.
  DeploymentGateConfig lenient;
  lenient.sample_queries = 8;
  lenient.replay_runs = 3;
  lenient.max_regression = 1e9;
  lenient.max_regression_ratio = 1e9;
  EXPECT_TRUE(evaluate_deployment(*fx.runtime, loam, lenient).approved);
  // A gate demanding an impossible gain rejects.
  DeploymentGateConfig impossible = lenient;
  impossible.max_regression = -0.99;  // require >= 99% cost reduction
  EXPECT_FALSE(evaluate_deployment(*fx.runtime, loam, impossible).approved);
}

TEST(DeploymentGate, UntrainedPredictorScrutinized) {
  // An untrained model's selections are arbitrary; the gate must still
  // produce a valid report (and the strict default thresholds protect
  // production from the worst outcomes).
  GateFixture fx;
  LoamDeployment raw(fx.runtime.get(), fx.config());
  // no train() on purpose — the predictor has random weights and no scaler.
  DeploymentGateConfig gc;
  gc.sample_queries = 6;
  gc.replay_runs = 3;
  const DeploymentGateReport report = evaluate_deployment(*fx.runtime, raw, gc);
  EXPECT_GT(report.queries, 0);
  EXPECT_GE(report.improved, 0);
  EXPECT_GE(report.regressed, 0);
}

}  // namespace
}  // namespace loam::core
