// Tests of the statistics-free plan vectorization (Section 4 / Fig. 4).
#include <gtest/gtest.h>

#include "core/encoding.h"
#include "warehouse/native_optimizer.h"
#include "warehouse/workload.h"

namespace loam::core {
namespace {

using warehouse::EnvFeatures;
using warehouse::OpType;
using warehouse::Plan;
using warehouse::PlanNode;
using warehouse::Query;

struct Fixture {
  warehouse::WorkloadGenerator gen{55};
  warehouse::Project project;
  std::unique_ptr<warehouse::NativeOptimizer> optimizer;

  Fixture() {
    warehouse::ProjectArchetype a;
    a.name = "enc";
    a.seed = 56;
    a.n_tables = 14;
    a.n_templates = 10;
    project = gen.make_project(a);
    optimizer = std::make_unique<warehouse::NativeOptimizer>(project.catalog);
  }

  Plan plan_for(int t) {
    Rng rng(60 + static_cast<std::uint64_t>(t));
    Query q = gen.instantiate(project, project.templates[static_cast<std::size_t>(t)],
                              0, rng);
    return optimizer->optimize(q);
  }
};

TEST(Encoding, FeatureDimMatchesLayout) {
  Fixture fx;
  PlanEncoder enc(&fx.project.catalog);
  const auto l = enc.layout();
  EXPECT_EQ(l.op, 0);
  EXPECT_EQ(l.table - l.op, 30);
  EXPECT_EQ(l.scan_numeric - l.table, 40);  // 5 x 8 table hash
  EXPECT_EQ(l.join_form - l.scan_numeric, 2);
  EXPECT_EQ(l.join_cols - l.join_form, 4);
  EXPECT_EQ(l.agg_fn - l.join_cols, 40);
  EXPECT_EQ(l.agg_cols - l.agg_fn, 5);
  EXPECT_EQ(l.filter_fns - l.agg_cols, 40);
  EXPECT_EQ(l.filter_cols - l.filter_fns, 8);
  EXPECT_EQ(l.env - l.filter_cols, 40);
  EXPECT_EQ(l.total - l.env, 4);
  EXPECT_EQ(enc.feature_dim(), l.total);
}

TEST(Encoding, NoEnvVariantDropsEnvBlock) {
  Fixture fx;
  EncodingConfig cfg;
  cfg.include_env = false;
  PlanEncoder enc(&fx.project.catalog, cfg);
  EXPECT_EQ(enc.feature_dim(), enc.layout().env);
}

TEST(Encoding, TreeMirrorsPlanStructure) {
  Fixture fx;
  PlanEncoder enc(&fx.project.catalog);
  Plan plan = fx.plan_for(0);
  nn::Tree tree = enc.encode(plan, nullptr, std::nullopt);
  ASSERT_EQ(tree.node_count(), plan.node_count());
  EXPECT_EQ(tree.root, plan.root());
  for (int i = 0; i < plan.node_count(); ++i) {
    EXPECT_EQ(tree.left[static_cast<std::size_t>(i)], plan.node(i).left);
    EXPECT_EQ(tree.right[static_cast<std::size_t>(i)], plan.node(i).right);
    // Operator one-hot set exactly once.
    int ones = 0;
    for (int j = 0; j < 30; ++j) ones += tree.features.at(i, j) > 0;
    EXPECT_EQ(ones, 1);
    EXPECT_GT(tree.features.at(i, static_cast<int>(plan.node(i).op)), 0.0f);
  }
}

TEST(Encoding, NoCardinalityLeakage) {
  // The statistics-free property: changing est_rows / true_rows must not
  // change a single feature value.
  Fixture fx;
  PlanEncoder enc(&fx.project.catalog);
  Plan plan = fx.plan_for(1);
  nn::Tree before = enc.encode(plan, nullptr, std::nullopt);
  for (PlanNode& n : plan.mutable_nodes()) {
    n.est_rows *= 1000.0;
    n.true_rows *= 1000.0;
  }
  nn::Tree after = enc.encode(plan, nullptr, std::nullopt);
  for (int i = 0; i < before.node_count(); ++i) {
    for (int j = 0; j < before.features.cols(); ++j) {
      ASSERT_FLOAT_EQ(before.features.at(i, j), after.features.at(i, j));
    }
  }
}

TEST(Encoding, ScanNumericsNormalizedAfterFit) {
  Fixture fx;
  PlanEncoder enc(&fx.project.catalog);
  std::vector<Plan> plans;
  std::vector<const Plan*> ptrs;
  for (int t = 0; t < 6; ++t) plans.push_back(fx.plan_for(t));
  for (const Plan& p : plans) ptrs.push_back(&p);
  enc.fit_normalizers(ptrs);
  const auto l = enc.layout();
  for (const Plan& p : plans) {
    nn::Tree tree = enc.encode(p, nullptr, std::nullopt);
    for (int i = 0; i < tree.node_count(); ++i) {
      EXPECT_GE(tree.features.at(i, l.scan_numeric), 0.0f);
      EXPECT_LE(tree.features.at(i, l.scan_numeric), 1.0f);
      EXPECT_GE(tree.features.at(i, l.scan_numeric + 1), 0.0f);
      EXPECT_LE(tree.features.at(i, l.scan_numeric + 1), 1.0f);
    }
  }
}

TEST(Encoding, FixedEnvAppliedToAllNodes) {
  Fixture fx;
  PlanEncoder enc(&fx.project.catalog);
  Plan plan = fx.plan_for(2);
  EnvFeatures env;
  env.cpu_idle = 0.61;
  env.io_wait = 0.07;
  env.load5_norm = 0.33;
  env.mem_usage = 0.52;
  nn::Tree tree = enc.encode(plan, nullptr, env);
  const int e = enc.layout().env;
  for (int i = 0; i < tree.node_count(); ++i) {
    EXPECT_FLOAT_EQ(tree.features.at(i, e + 0), 0.61f);
    EXPECT_FLOAT_EQ(tree.features.at(i, e + 1), 0.07f);
    EXPECT_FLOAT_EQ(tree.features.at(i, e + 2), 0.33f);
    EXPECT_FLOAT_EQ(tree.features.at(i, e + 3), 0.52f);
  }
}

TEST(Encoding, StageEnvsAssignPerStage) {
  Fixture fx;
  PlanEncoder enc(&fx.project.catalog);
  Plan plan = fx.plan_for(3);
  warehouse::StageGraph graph = warehouse::decompose_into_stages(plan);
  std::vector<EnvFeatures> envs(static_cast<std::size_t>(graph.stage_count()));
  for (int s = 0; s < graph.stage_count(); ++s) {
    envs[static_cast<std::size_t>(s)].cpu_idle = 0.1 + 0.05 * s;
  }
  nn::Tree tree = enc.encode(plan, &envs, std::nullopt);
  const int e = enc.layout().env;
  for (int i = 0; i < plan.node_count(); ++i) {
    const int stage = plan.node(i).stage;
    EXPECT_FLOAT_EQ(tree.features.at(i, e),
                    static_cast<float>(0.1 + 0.05 * stage));
  }
}

TEST(Encoding, JoinAndFilterBlocksPopulated) {
  Fixture fx;
  PlanEncoder enc(&fx.project.catalog);
  const auto l = enc.layout();
  bool saw_join = false, saw_filter = false;
  for (int t = 0; t < 8; ++t) {
    Plan plan = fx.plan_for(t);
    nn::Tree tree = enc.encode(plan, nullptr, std::nullopt);
    for (int i = 0; i < plan.node_count(); ++i) {
      const PlanNode& n = plan.node(i);
      if (warehouse::is_join(n.op)) {
        saw_join = true;
        float join_form_sum = 0.0f, join_cols_sum = 0.0f;
        for (int j = l.join_form; j < l.join_cols; ++j) {
          join_form_sum += tree.features.at(i, j);
        }
        for (int j = l.join_cols; j < l.agg_fn; ++j) {
          join_cols_sum += tree.features.at(i, j);
        }
        EXPECT_FLOAT_EQ(join_form_sum, 1.0f);
        EXPECT_GT(join_cols_sum, 0.0f);
      }
      if (warehouse::is_filter_like(n.op) && !n.filter_fns.empty()) {
        saw_filter = true;
        float fn_sum = 0.0f;
        for (int j = l.filter_fns; j < l.filter_cols; ++j) {
          fn_sum += tree.features.at(i, j);
        }
        EXPECT_GT(fn_sum, 0.0f);
      }
    }
  }
  EXPECT_TRUE(saw_join);
  EXPECT_TRUE(saw_filter);
}

TEST(Encoding, DistinctTablesGetDistinctCodes) {
  Fixture fx;
  PlanEncoder enc(&fx.project.catalog);
  const auto l = enc.layout();
  // Two single-table scans of different tables must differ in the table block.
  Plan p;
  PlanNode s0;
  s0.op = OpType::kTableScan;
  s0.table_id = 0;
  s0.partitions_accessed = 1;
  s0.columns_accessed = 1;
  p.add_node(s0);
  p.set_root(0);
  nn::Tree t0 = enc.encode(p, nullptr, std::nullopt);
  p.mutable_node(0).table_id = 1;
  nn::Tree t1 = enc.encode(p, nullptr, std::nullopt);
  bool differs = false;
  for (int j = l.table; j < l.scan_numeric; ++j) {
    if (t0.features.at(0, j) != t1.features.at(0, j)) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace loam::core
