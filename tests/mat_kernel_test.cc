// Kernel-parity suite for the dense-math core. The contract under test:
// every dispatched/fused kernel is bit-identical (0 ULP) to a naive
// reference written with the canonical association — a single std::fmaf
// chain per output element, ascending-k (fmaf is correctly rounded, i.e.
// exactly one hardware-FMA rounding per step) — across ragged shapes that
// exercise all remainder paths of the SIMD micro-kernels. Also pins the
// Mat::resize storage-reuse semantics and the Workspace arena's
// borrow/give_back reuse. Cross-arm identity is covered separately by
// tests/simd_kernel_test.cc.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "nn/layers.h"
#include "nn/mat.h"
#include "nn/tree_conv.h"
#include "nn/workspace.h"
#include "util/rng.h"

namespace loam::nn {
namespace {

// ---------------------------------------------------------------------------
// Reference kernels: plain triple loops, one accumulator per output element,
// ascending k. No zero-skip, no blocking — the semantic ground truth.
// ---------------------------------------------------------------------------

Mat ref_matmul(const Mat& a, const Mat& b) {
  Mat out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      float t = 0.0f;
      for (int kk = 0; kk < a.cols(); ++kk) {
        t = std::fmaf(a.at(i, kk), b.at(kk, j), t);
      }
      out.at(i, j) = t;
    }
  }
  return out;
}

Mat ref_matmul_at_b(const Mat& a, const Mat& b) {
  Mat out(a.cols(), b.cols());
  for (int i = 0; i < a.cols(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      float t = 0.0f;
      for (int kk = 0; kk < a.rows(); ++kk) {
        t = std::fmaf(a.at(kk, i), b.at(kk, j), t);
      }
      out.at(i, j) = t;
    }
  }
  return out;
}

Mat ref_matmul_a_bt(const Mat& a, const Mat& b) {
  Mat out(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      float t = 0.0f;
      for (int kk = 0; kk < a.cols(); ++kk) {
        t = std::fmaf(a.at(i, kk), b.at(j, kk), t);
      }
      out.at(i, j) = t;
    }
  }
  return out;
}

Mat random_mat(int rows, int cols, Rng& rng, double sparsity = 0.0) {
  Mat m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (sparsity > 0.0 && rng.uniform(0.0, 1.0) < sparsity) continue;
      m.at(i, j) = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
  }
  return m;
}

void expect_same_bits(const Mat& got, const Mat& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (int i = 0; i < got.rows(); ++i) {
    for (int j = 0; j < got.cols(); ++j) {
      // EXPECT_EQ on floats is exact — 0 ULP tolerance.
      EXPECT_EQ(got.at(i, j), want.at(i, j))
          << what << " differs at (" << i << "," << j << ")";
    }
  }
}

// Ragged sizes covering every remainder combination of the 2-row x 4-k
// (and 4-j) blocking, plus shapes past the 256-column cache tile.
struct Shape { int m, k, n; };
const Shape kShapes[] = {
    {1, 1, 1},  {1, 4, 3},   {2, 5, 2},   {3, 3, 3},   {5, 7, 5},
    {4, 8, 4},  {7, 13, 9},  {16, 16, 16}, {17, 31, 33}, {64, 64, 64},
    {65, 63, 1}, {1, 64, 65}, {33, 5, 257}, {2, 300, 19},
};

TEST(MatKernel, MatmulMatchesReferenceBitExact) {
  Rng rng(101);
  for (const Shape& s : kShapes) {
    const Mat a = random_mat(s.m, s.k, rng);
    const Mat b = random_mat(s.k, s.n, rng);
    Mat out;
    matmul(a, b, out);
    expect_same_bits(out, ref_matmul(a, b), "matmul");
  }
}

TEST(MatKernel, MatmulAtBMatchesReferenceBitExact) {
  Rng rng(102);
  for (const Shape& s : kShapes) {
    const Mat a = random_mat(s.k, s.m, rng);  // out = a^T b is [m, n]
    const Mat b = random_mat(s.k, s.n, rng);
    Mat out;
    matmul_at_b(a, b, out);
    expect_same_bits(out, ref_matmul_at_b(a, b), "matmul_at_b");
  }
}

TEST(MatKernel, MatmulABtMatchesReferenceBitExact) {
  Rng rng(103);
  for (const Shape& s : kShapes) {
    const Mat a = random_mat(s.m, s.k, rng);
    const Mat b = random_mat(s.n, s.k, rng);
    Mat out;
    matmul_a_bt(a, b, out);
    expect_same_bits(out, ref_matmul_a_bt(a, b), "matmul_a_bt");
  }
}

TEST(MatKernel, AccumulateAddsOnTopOfExistingValues) {
  Rng rng(104);
  for (const Shape& s : {Shape{3, 5, 7}, Shape{17, 9, 33}}) {
    const Mat a = random_mat(s.m, s.k, rng);
    const Mat b = random_mat(s.k, s.n, rng);
    Mat base = random_mat(s.m, s.n, rng);

    // Accumulate mode extends the single per-element chain: the existing
    // value is the first term, then products in ascending k.
    Mat want = base;
    for (int i = 0; i < s.m; ++i) {
      for (int j = 0; j < s.n; ++j) {
        float t = want.at(i, j);
        for (int kk = 0; kk < s.k; ++kk) {
          t = std::fmaf(a.at(i, kk), b.at(kk, j), t);
        }
        want.at(i, j) = t;
      }
    }
    Mat out = base;
    matmul(a, b, out, /*accumulate=*/true);
    expect_same_bits(out, want, "matmul accumulate");
  }
}

TEST(MatKernel, AccumulateIntoWrongShapeBehavesLikeFreshMat) {
  Rng rng(105);
  const Mat a = random_mat(6, 4, rng);
  const Mat b = random_mat(4, 5, rng);
  Mat out = random_mat(3, 3, rng);  // wrong shape, non-zero contents
  matmul(a, b, out, /*accumulate=*/true);
  expect_same_bits(out, ref_matmul(a, b), "accumulate after reshape");
}

TEST(MatKernel, SparseSkipPathIsBitIdenticalToDense) {
  // The zero-skip path is an opt-in for sparse inputs; skipping a zero lane
  // must equal adding its (±0) products. Exercised with ~70% zeros the way
  // the one-hot plan-feature layer produces them.
  Rng rng(106);
  for (const Shape& s : {Shape{9, 40, 16}, Shape{33, 19, 48}}) {
    const Mat a = random_mat(s.m, s.k, rng, /*sparsity=*/0.7);
    const Mat b = random_mat(s.k, s.n, rng);
    Mat dense, sparse;
    matmul(a, b, dense, /*accumulate=*/false, /*skip_zeros=*/false);
    matmul(a, b, sparse, /*accumulate=*/false, /*skip_zeros=*/true);
    expect_same_bits(sparse, dense, "skip_zeros");
  }
}

TEST(MatKernel, FusedAtBBiasAccEqualsUnfusedPair) {
  Rng rng(107);
  for (const Shape& s : {Shape{5, 11, 3}, Shape{32, 48, 16}}) {
    const Mat a = random_mat(s.k, s.m, rng);
    const Mat g = random_mat(s.k, s.n, rng);
    Mat w_grad = random_mat(s.m, s.n, rng);  // pre-existing accumulation
    Mat b_grad = random_mat(1, s.n, rng);
    Mat w_want = w_grad;
    Mat b_want = b_grad;
    matmul_at_b(a, g, w_want, /*accumulate=*/true);
    accumulate_bias_grad(g, b_want);

    matmul_at_b_bias_acc(a, g, w_grad, b_grad);
    expect_same_bits(w_grad, w_want, "fused w_grad");
    expect_same_bits(b_grad, b_want, "fused bias_grad");
  }
}

TEST(MatKernel, FusedLinearBiasActEqualsUnfusedSequence) {
  Rng rng(108);
  const Mat x = random_mat(13, 24, rng);
  Mat w = random_mat(24, 10, rng);
  Mat bias = random_mat(1, 10, rng);

  for (Activation act :
       {Activation::kNone, Activation::kRelu, Activation::kLeakyRelu}) {
    Mat want = ref_matmul(x, w);
    add_row_bias(want, bias);
    Mat want_mask(want.rows(), want.cols());
    for (int i = 0; i < want.rows(); ++i) {
      for (int j = 0; j < want.cols(); ++j) {
        float& v = want.at(i, j);
        switch (act) {
          case Activation::kNone:
            want_mask.at(i, j) = 1.0f;
            break;
          case Activation::kRelu:
            want_mask.at(i, j) = v > 0.0f ? 1.0f : 0.0f;
            if (!(v > 0.0f)) v = 0.0f;
            break;
          case Activation::kLeakyRelu:
            want_mask.at(i, j) = v < 0.0f ? 0.01f : 1.0f;
            if (v < 0.0f) v *= 0.01f;
            break;
        }
      }
    }
    Mat y, mask;
    linear_bias_act(x, w, bias, act, 0.01f, y, &mask);
    expect_same_bits(y, want, "fused forward");
    if (act != Activation::kNone) {
      expect_same_bits(mask, want_mask, "fused mask");
    }
  }
}

TEST(MatKernel, FusedBackwardEqualsUnfusedSequence) {
  Rng rng(109);
  const Mat x = random_mat(9, 14, rng);
  const Mat w = random_mat(14, 6, rng);
  const Mat bias = random_mat(1, 6, rng);
  Mat y, mask;
  linear_bias_act(x, w, bias, Activation::kRelu, 0.01f, y, &mask);
  const Mat grad_out = random_mat(9, 6, rng);

  // Unfused: mask multiply, then the three separate gradient ops.
  Mat gpre_want = grad_out;
  gpre_want.mul_inplace(mask);
  Mat w_grad_want(14, 6), b_grad_want(1, 6), grad_in_want;
  matmul_at_b(x, gpre_want, w_grad_want, /*accumulate=*/true);
  accumulate_bias_grad(gpre_want, b_grad_want);
  matmul_a_bt(gpre_want, w, grad_in_want);

  Mat w_grad(14, 6), b_grad(1, 6), grad_in, scratch;
  linear_bias_act_backward(x, w, grad_out, &mask, scratch, w_grad, b_grad,
                           grad_in);
  expect_same_bits(w_grad, w_grad_want, "backward w_grad");
  expect_same_bits(b_grad, b_grad_want, "backward bias_grad");
  expect_same_bits(grad_in, grad_in_want, "backward grad_in");
}

TEST(MatKernel, FusedLinearLayerEqualsLinearPlusRelu) {
  Rng rng(110);
  Rng rng_a(42), rng_b(42);  // identical weight initialization
  Linear fused("l", 12, 7, rng_a, Activation::kRelu);
  Linear plain("l", 12, 7, rng_b);
  Relu relu;
  const Mat x = random_mat(5, 12, rng);
  Mat got = fused.forward(x);
  Mat want = relu.forward(plain.forward(x));
  expect_same_bits(got, want, "Linear fused ReLU");
}

TEST(MatKernel, FusedTreeConvLayerEqualsUnfusedPlusLeakyRelu) {
  Rng rng(111);
  Rng rng_a(43), rng_b(43);
  TreeConvLayer fused("c", 6, 8, rng_a, Activation::kLeakyRelu, 0.01f,
                      /*sparse_input=*/true);
  TreeConvLayer plain("c", 6, 8, rng_b);
  LeakyRelu act(0.01f);
  const Mat x = random_mat(7, 6, rng, /*sparsity=*/0.5);
  const std::vector<int> left = {1, 3, -1, -1, -1, -1, -1};
  const std::vector<int> right = {2, 4, 5, -1, -1, -1, 6};
  Mat got = fused.forward(x, left, right);
  Mat want = act.forward(plain.forward(x, left, right));
  expect_same_bits(got, want, "TreeConvLayer fused LeakyReLU");
}

TEST(MatResize, ReusesStorageWhenCapacitySuffices) {
  Mat m(10, 12);
  const float* before = m.data();
  const std::size_t cap = m.capacity();
  m.resize(6, 20);  // 120 <= 120: same allocation
  EXPECT_EQ(m.data(), before);
  EXPECT_EQ(m.rows(), 6);
  EXPECT_EQ(m.cols(), 20);
  m.resize(2, 3);  // shrink: still the same allocation
  EXPECT_EQ(m.data(), before);
  EXPECT_EQ(m.capacity(), cap);
}

TEST(MatResize, RepeatedMatmulIntoSameOutDoesNotReallocate) {
  Rng rng(112);
  const Mat a = random_mat(8, 6, rng);
  const Mat b = random_mat(6, 10, rng);
  Mat out;
  matmul(a, b, out);
  const float* data = out.data();
  for (int rep = 0; rep < 5; ++rep) {
    matmul(a, b, out);
    EXPECT_EQ(out.data(), data) << "matmul reallocated a same-shape output";
  }
  expect_same_bits(out, ref_matmul(a, b), "repeated matmul");
}

TEST(Workspace, BorrowGiveBackReusesBuffers) {
  Workspace ws;
  Mat m1 = ws.borrow(16, 16);
  const float* p1 = m1.data();
  ws.give_back(std::move(m1));
  EXPECT_EQ(ws.pooled(), 1u);
  // Same-or-smaller request gets the pooled allocation back.
  Mat m2 = ws.borrow(8, 8);
  EXPECT_EQ(m2.data(), p1);
  ws.give_back(std::move(m2));
}

TEST(Workspace, ScratchReturnsOnScopeExit) {
  Workspace ws;
  {
    Scratch s(ws, 4, 4);
    s->fill(1.0f);
    EXPECT_EQ(ws.pooled(), 0u);
    Scratch nested(ws, 2, 2);  // nested borrow takes a second buffer
    EXPECT_EQ(ws.pooled(), 0u);
  }
  EXPECT_EQ(ws.pooled(), 2u);
}

TEST(Workspace, TlsArenaKeepsPredictionsAllocationFreeAndStable) {
  // Two identical TreeConvNet batch passes through the thread-local arena
  // agree bit-for-bit (borrowed buffers carry stale contents by design; every
  // consumer must fully overwrite them).
  Rng rng(113);
  TreeConvNet::Config cfg;
  cfg.input_dim = 6;
  cfg.hidden_dim = 16;
  cfg.embed_dim = 8;
  cfg.layers = 2;
  TreeConvNet net(cfg, rng);
  std::vector<nn::Tree> trees;
  for (int t = 0; t < 5; ++t) {
    nn::Tree tree;
    const int n = 1 + t;
    tree.features = random_mat(n, 6, rng, /*sparsity=*/0.5);
    tree.left.assign(static_cast<std::size_t>(n), -1);
    tree.right.assign(static_cast<std::size_t>(n), -1);
    for (int i = 0; 2 * i + 1 < n; ++i) {
      tree.left[static_cast<std::size_t>(i)] = 2 * i + 1;
      if (2 * i + 2 < n) tree.right[static_cast<std::size_t>(i)] = 2 * i + 2;
    }
    trees.push_back(std::move(tree));
  }
  std::vector<const Tree*> ptrs;
  for (const auto& t : trees) ptrs.push_back(&t);
  const Mat first = net.forward_batch(ptrs);
  const Mat second = net.forward_batch(ptrs);
  expect_same_bits(second, first, "forward_batch repeatability");
  // And each row still equals the single-tree path.
  for (std::size_t b = 0; b < trees.size(); ++b) {
    Mat single = net.forward(trees[b]);
    for (int j = 0; j < single.cols(); ++j) {
      EXPECT_EQ(first.at(static_cast<int>(b), j), single.at(0, j));
    }
  }
}

}  // namespace
}  // namespace loam::nn
