// loam::cache tests: LRU semantics, concurrent stress (run under TSan),
// semantic-signature keying, and bit-identity of every memoized path —
// encoder node rows, deployment selection, and parallel gate replay.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "cache/cache.h"
#include "cache/lru.h"
#include "core/gate.h"
#include "core/loam.h"
#include "warehouse/flighting.h"

namespace loam {
namespace {

using cache::CacheConfig;
using cache::CacheStats;
using cache::InferenceCache;
using cache::ShardedLru;
using warehouse::OpType;
using warehouse::Plan;
using warehouse::PlanNode;

// ---------------------------------------------------------------------------
// ShardedLru unit semantics
// ---------------------------------------------------------------------------

TEST(ShardedLruTest, GetPutUpdateRoundTrip) {
  ShardedLru<int> lru(8, 1);  // one stripe: deterministic eviction order
  EXPECT_FALSE(lru.get(1).has_value());
  EXPECT_EQ(lru.put(1, 10), ShardedLru<int>::PutOutcome::kInserted);
  EXPECT_EQ(lru.put(2, 20), ShardedLru<int>::PutOutcome::kInserted);
  ASSERT_TRUE(lru.get(1).has_value());
  EXPECT_EQ(*lru.get(1), 10);
  EXPECT_EQ(lru.put(1, 11), ShardedLru<int>::PutOutcome::kUpdated);
  EXPECT_EQ(*lru.get(1), 11);
  EXPECT_EQ(lru.size(), 2u);
  const CacheStats st = lru.stats();
  EXPECT_EQ(st.inserts, 2u);
  EXPECT_EQ(st.updates, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 3u);
}

TEST(ShardedLruTest, EvictsLeastRecentlyUsed) {
  ShardedLru<int> lru(3, 1);
  lru.put(1, 1);
  lru.put(2, 2);
  lru.put(3, 3);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(lru.get(1).has_value());
  EXPECT_EQ(lru.put(4, 4), ShardedLru<int>::PutOutcome::kInsertedEvicting);
  EXPECT_FALSE(lru.get(2).has_value());  // evicted
  EXPECT_TRUE(lru.get(1).has_value());
  EXPECT_TRUE(lru.get(3).has_value());
  EXPECT_TRUE(lru.get(4).has_value());
  EXPECT_EQ(lru.stats().evictions, 1u);
  EXPECT_EQ(lru.size(), 3u);
}

TEST(ShardedLruTest, ZeroCapacityDisables) {
  ShardedLru<int> lru(0);
  EXPECT_EQ(lru.put(1, 1), ShardedLru<int>::PutOutcome::kDropped);
  EXPECT_FALSE(lru.get(1).has_value());
  EXPECT_EQ(lru.size(), 0u);
  EXPECT_EQ(lru.capacity(), 0u);
}

TEST(ShardedLruTest, ShardCountRoundsToPowerOfTwo) {
  ShardedLru<int> lru(64, 6);
  EXPECT_EQ(lru.shard_count(), 8);
  EXPECT_GE(lru.capacity(), 64u);
  // Tiny caches collapse to one stripe rather than 8 one-entry stripes.
  ShardedLru<int> tiny(2, 8);
  EXPECT_EQ(tiny.shard_count(), 1);
}

TEST(ShardedLruTest, ClearDropsEntriesKeepsStats) {
  ShardedLru<int> lru(16);
  for (std::uint64_t k = 0; k < 10; ++k) lru.put(k, static_cast<int>(k));
  EXPECT_EQ(lru.size(), 10u);
  lru.clear();
  EXPECT_EQ(lru.size(), 0u);
  EXPECT_EQ(lru.stats().inserts, 10u);  // lifetime counters survive clear()
  EXPECT_FALSE(lru.get(3).has_value());
}

// Run under TSan by the tools/check.sh matrix: concurrent gets/puts on one
// instance must be race-free, and the always-on stats must account for every
// operation exactly once.
TEST(ShardedLruTest, ConcurrentMixedLoadIsCoherent) {
  ShardedLru<std::uint64_t> lru(256, 8);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 4000;
  std::atomic<std::uint64_t> observed_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t local_hits = 0;
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key = (i * 31 + static_cast<std::uint64_t>(t)) % 512;
        if (i % 3 == 0) {
          lru.put(key, key * 2);
        } else if (std::optional<std::uint64_t> v = lru.get(key)) {
          EXPECT_EQ(*v, key * 2);  // values are never torn or mismatched
          ++local_hits;
        }
      }
      observed_hits.fetch_add(local_hits);
    });
  }
  for (std::thread& th : threads) th.join();
  const CacheStats st = lru.stats();
  EXPECT_EQ(st.hits, observed_hits.load());
  EXPECT_EQ(st.hits + st.misses, kThreads * (kOpsPerThread - kOpsPerThread / 3 - 1));
  EXPECT_LE(lru.size(), lru.capacity());
}

// ---------------------------------------------------------------------------
// Key construction
// ---------------------------------------------------------------------------

TEST(CacheKeyTest, CombineIsOrderSensitive) {
  EXPECT_NE(cache::combine(1, 2), cache::combine(2, 1));
  EXPECT_NE(cache::combine(0, 0), 0u);
}

TEST(CacheKeyTest, FingerprintIsBitExact) {
  const double a[4] = {0.5, 0.25, 0.125, 0.0};
  double b[4] = {0.5, 0.25, 0.125, 0.0};
  EXPECT_EQ(cache::fingerprint(a), cache::fingerprint(b));
  b[3] = 1e-300;  // any bit flip changes the key
  EXPECT_NE(cache::fingerprint(a), cache::fingerprint(b));
  const double short3[3] = {0.5, 0.25, 0.125};
  EXPECT_NE(cache::fingerprint(a), cache::fingerprint(short3));
}

TEST(CacheKeyTest, EncodingAndScoreTablesNeverAlias) {
  // Same (plan, env) pair must produce distinct keys for the two tables, and
  // the score key must move with the model epoch.
  const std::uint64_t plan_key = 0xabcdefull, env = 0x1234ull;
  EXPECT_NE(InferenceCache::encoding_key(plan_key, env),
            InferenceCache::score_key(plan_key, env, 0));
  EXPECT_NE(InferenceCache::score_key(plan_key, env, 1),
            InferenceCache::score_key(plan_key, env, 2));
  EXPECT_NE(InferenceCache::encoding_key(plan_key, env),
            InferenceCache::encoding_key(plan_key, env + 1));
}

TEST(InferenceCacheTest, DisabledCacheNeverHits) {
  CacheConfig cc;
  cc.enabled = false;
  InferenceCache cache("test_disabled", cc);
  cache.put_score(1, 2.0);
  EXPECT_FALSE(cache.get_score(1).has_value());
  cache.put_encoding(1, std::make_shared<const nn::Tree>());
  EXPECT_EQ(cache.get_encoding(1), nullptr);
}

TEST(InferenceCacheTest, ScoreRoundTripAndStats) {
  InferenceCache cache("test_scores", CacheConfig{});
  const std::uint64_t k = InferenceCache::score_key(7, 9, 1);
  EXPECT_FALSE(cache.get_score(k).has_value());
  cache.put_score(k, 123.5);
  ASSERT_TRUE(cache.get_score(k).has_value());
  EXPECT_EQ(*cache.get_score(k), 123.5);
  const CacheStats st = cache.score_stats();
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.misses, 1u);
  cache.clear();
  EXPECT_FALSE(cache.get_score(k).has_value());
}

// ---------------------------------------------------------------------------
// Semantic signatures as cache keys
// ---------------------------------------------------------------------------

Plan make_plan(int table_a, int table_b, double est_a, OpType join_op) {
  Plan p;
  PlanNode scan_a;
  scan_a.op = OpType::kTableScan;
  scan_a.table_id = table_a;
  scan_a.partitions_accessed = 4;
  scan_a.columns_accessed = 3;
  scan_a.est_rows = est_a;
  const int a = p.add_node(scan_a);
  PlanNode scan_b;
  scan_b.op = OpType::kTableScan;
  scan_b.table_id = table_b;
  scan_b.partitions_accessed = 2;
  scan_b.columns_accessed = 2;
  scan_b.est_rows = 500;
  const int b = p.add_node(scan_b);
  PlanNode join;
  join.op = join_op;
  join.left = a;
  join.right = b;
  join.join_columns = {"t.a", "t.b"};
  join.est_rows = est_a * 2;
  const int j = p.add_node(join);
  PlanNode sink;
  sink.op = OpType::kSink;
  sink.left = j;
  p.set_root(p.add_node(sink));
  return p;
}

TEST(SignatureKeyTest, DistinctSemanticsNeverCollide) {
  // Sweep a grid of semantically distinct plans (leaf tables x estimate
  // buckets x join operators) and require every signature to be unique —
  // the collision test backing the cache's correctness argument.
  std::set<std::uint64_t> sigs;
  int plans = 0;
  const OpType joins[] = {OpType::kHashJoin, OpType::kMergeJoin,
                          OpType::kBroadcastHashJoin};
  for (int ta = 0; ta < 8; ++ta) {
    for (int tb = 8; tb < 16; ++tb) {
      for (double est : {10.0, 1000.0, 100000.0}) {
        for (OpType j : joins) {
          sigs.insert(make_plan(ta, tb, est, j).signature());
          ++plans;
        }
      }
    }
  }
  EXPECT_EQ(static_cast<int>(sigs.size()), plans);
}

TEST(SignatureKeyTest, JoinColumnOrderAndContentMatter) {
  Plan a = make_plan(0, 1, 100, OpType::kHashJoin);
  Plan b = make_plan(0, 1, 100, OpType::kHashJoin);
  EXPECT_EQ(a.signature(), b.signature());
  b.mutable_node(2).join_columns = {"t.b", "t.a"};  // swapped order
  EXPECT_NE(a.signature(), b.signature());
  Plan c = make_plan(0, 1, 100, OpType::kHashJoin);
  c.mutable_node(2).join_columns = {"t.a", "t.c"};
  EXPECT_NE(a.signature(), c.signature());
}

// ---------------------------------------------------------------------------
// Pipeline bit-identity: cached vs uncached must be indistinguishable
// ---------------------------------------------------------------------------

struct PipelineFixture {
  std::unique_ptr<core::ProjectRuntime> runtime;

  PipelineFixture() {
    warehouse::ProjectArchetype a;
    a.name = "cachefx";
    a.seed = 11;
    a.n_tables = 12;
    a.n_templates = 7;
    a.queries_per_day = 40.0;
    a.stats_coverage = 0.2;
    a.cluster_machines = 16;
    core::RuntimeConfig rc;
    rc.seed = 77;
    runtime = std::make_unique<core::ProjectRuntime>(a, rc);
    runtime->simulate_history(4, 40);
  }

  core::LoamConfig config(bool cache_on) const {
    core::LoamConfig cfg;
    cfg.train_first_day = 0;
    cfg.train_last_day = 3;
    cfg.max_train_queries = 120;
    cfg.candidate_sample_queries = 10;
    cfg.predictor.epochs = 4;
    cfg.predictor.hidden_dim = 16;
    cfg.cache.enabled = cache_on;
    return cfg;
  }
};

TEST(PipelineBitIdentity, EncoderRowCacheReproducesTrees) {
  PipelineFixture fx;
  core::EncodingConfig cold_cfg;
  core::EncodingConfig warm_cfg;
  warm_cfg.row_cache_capacity = 1024;
  core::PlanEncoder cold(&fx.runtime->project().catalog, cold_cfg);
  core::PlanEncoder warm(&fx.runtime->project().catalog, warm_cfg);

  core::PlanExplorer::Config ec;
  ec.num_threads = 1;
  core::PlanExplorer explorer(&fx.runtime->optimizer(), ec);
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(0, 1, 12);
  const warehouse::EnvFeatures env;  // defaults
  for (int pass = 0; pass < 2; ++pass) {  // second pass = warm memo
    for (const warehouse::Query& q : queries) {
      core::CandidateGeneration gen = explorer.explore(q);
      for (const Plan& plan : gen.plans) {
        const nn::Tree a = cold.encode(plan, nullptr, env);
        const nn::Tree b = warm.encode(plan, nullptr, env);
        ASSERT_EQ(a.features.rows(), b.features.rows());
        ASSERT_EQ(a.features.cols(), b.features.cols());
        for (int r = 0; r < a.features.rows(); ++r) {
          auto ra = a.features.row(r);
          auto rb = b.features.row(r);
          for (std::size_t c = 0; c < ra.size(); ++c) {
            ASSERT_EQ(ra[c], rb[c]) << "row " << r << " col " << c;
          }
        }
        EXPECT_EQ(a.left, b.left);
        EXPECT_EQ(a.right, b.right);
      }
    }
  }
  const CacheStats st = warm.row_cache_stats();
  EXPECT_GT(st.hits, 0u);            // shared subtrees actually memoized
  EXPECT_EQ(cold.row_cache_stats().hits, 0u);
}

TEST(PipelineBitIdentity, SelectionIdenticalWithCacheOnAndOff) {
  PipelineFixture fx;
  core::LoamDeployment cached(fx.runtime.get(), fx.config(true));
  core::LoamDeployment plain(fx.runtime.get(), fx.config(false));
  cached.train();
  plain.train();

  core::PlanExplorer::Config ec;
  ec.num_threads = 1;
  core::PlanExplorer explorer(&fx.runtime->optimizer(), ec);
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(4, 5, 10);
  // Two passes: the second hits the warm score cache, and must STILL match
  // the uncached deployment exactly.
  for (int pass = 0; pass < 2; ++pass) {
    for (const warehouse::Query& q : queries) {
      core::CandidateGeneration gen = explorer.explore(q);
      // Candidate sets carry pairwise distinct semantic signatures (the
      // explorer dedups on the common estimate face).
      std::set<std::uint64_t> sigs;
      for (const Plan& p : gen.plans) sigs.insert(p.signature());
      EXPECT_EQ(sigs.size(), gen.plans.size());

      std::vector<double> pred_cached, pred_plain;
      const int sel_cached = cached.select(gen, &pred_cached);
      const int sel_plain = plain.select(gen, &pred_plain);
      EXPECT_EQ(sel_cached, sel_plain);
      ASSERT_EQ(pred_cached.size(), pred_plain.size());
      for (std::size_t i = 0; i < pred_cached.size(); ++i) {
        EXPECT_EQ(pred_cached[i], pred_plain[i]) << "candidate " << i;
      }
    }
  }
  EXPECT_GT(cached.inference_cache().score_stats().hits, 0u);
  EXPECT_EQ(plain.inference_cache().score_stats().hits, 0u);
}

TEST(PipelineBitIdentity, RetrainEpochInvalidatesScores) {
  PipelineFixture fx;
  core::LoamDeployment loam(fx.runtime.get(), fx.config(true));
  loam.train();
  EXPECT_EQ(loam.model_epoch(), 1);
  core::PlanExplorer::Config ec;
  ec.num_threads = 1;
  core::PlanExplorer explorer(&fx.runtime->optimizer(), ec);
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(4, 4, 1);
  ASSERT_FALSE(queries.empty());
  const core::CandidateGeneration gen = explorer.explore(queries.front());
  loam.select(gen);  // populate
  loam.select(gen);  // warm: every candidate hits
  const std::uint64_t hits_warm = loam.inference_cache().score_stats().hits;
  EXPECT_GE(hits_warm, gen.plans.size());
  loam.train();  // epoch bump + clear: every prior score key is dead
  EXPECT_EQ(loam.model_epoch(), 2);
  // Candidates within one generation are signature-unique, so the first
  // post-retrain select cannot hit anything: no entries exist under the new
  // epoch and the old epoch's keys no longer match.
  loam.select(gen);
  EXPECT_EQ(loam.inference_cache().score_stats().hits, hits_warm);
  loam.select(gen);  // and the cache resumes working under the new epoch
  EXPECT_GT(loam.inference_cache().score_stats().hits, hits_warm);
}

TEST(PipelineBitIdentity, SchemaMigrationStrandsEveryPreMigrationCacheKey) {
  PipelineFixture fx;
  core::PlanExplorer::Config ec;
  ec.num_threads = 1;
  core::PlanExplorer explorer(&fx.runtime->optimizer(), ec);
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(4, 4, 6);
  ASSERT_FALSE(queries.empty());

  std::set<std::uint64_t> pre_sigs;
  std::vector<std::size_t> pre_counts;
  for (const warehouse::Query& q : queries) {
    const core::CandidateGeneration gen = explorer.explore(q);
    pre_counts.push_back(gen.plans.size());
    for (const Plan& p : gen.plans) pre_sigs.insert(p.signature());
  }

  // A SHAPE-PRESERVING migration on every base table: no columns change, no
  // rows change — only Table::schema_epoch bumps, exactly the case where a
  // structural signature without the epoch term would keep serving stale
  // cache entries for byte-identical plan trees.
  warehouse::Project& project = fx.runtime->project();
  Rng mig_rng(5);
  for (int id = 0; id < project.catalog.table_count(); ++id) {
    if (project.catalog.table(id).alias_of >= 0) continue;
    warehouse::migrate_table(project, id, 0, 0, 1.0, mig_rng);
    EXPECT_EQ(project.catalog.table(id).schema_epoch, 1);
  }

  for (std::size_t i = 0; i < queries.size(); ++i) {
    const core::CandidateGeneration gen = explorer.explore(queries[i]);
    // Same query, same knobs, same catalog shape: the candidate set is
    // structurally unchanged...
    EXPECT_EQ(gen.plans.size(), pre_counts[i]);
    for (const Plan& p : gen.plans) {
      // ...but every post-migration signature is new, so every cache key
      // derived from it (encoding AND score, any env, any model epoch) can
      // only miss — zero stale hits by construction.
      EXPECT_EQ(pre_sigs.count(p.signature()), 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel flighting replay determinism
// ---------------------------------------------------------------------------

TEST(ParallelReplay, PairedReplayBitIdenticalAcrossThreadCounts) {
  PipelineFixture fx;
  core::PlanExplorer::Config ec;
  ec.num_threads = 1;
  core::PlanExplorer explorer(&fx.runtime->optimizer(), ec);
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(0, 0, 3);
  ASSERT_FALSE(queries.empty());
  const warehouse::ClusterConfig& cluster_cfg = fx.runtime->config().cluster;
  for (const warehouse::Query& q : queries) {
    core::CandidateGeneration gen = explorer.explore(q);
    const auto serial = warehouse::paired_replay(
        gen.plans, cluster_cfg, fx.runtime->config().executor, 4, 99, nullptr);
    util::ThreadPool pool(3);
    const auto parallel = warehouse::paired_replay(
        gen.plans, cluster_cfg, fx.runtime->config().executor, 4, 99, &pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t p = 0; p < serial.size(); ++p) {
      ASSERT_EQ(serial[p].size(), parallel[p].size());
      for (std::size_t r = 0; r < serial[p].size(); ++r) {
        EXPECT_EQ(serial[p][r], parallel[p][r]) << "plan " << p << " run " << r;
      }
    }
  }
}

TEST(ParallelReplay, PrepareEvaluationBitIdenticalAcrossThreadCounts) {
  PipelineFixture fx;
  core::PlanExplorer::Config ec;
  ec.num_threads = 1;
  std::vector<warehouse::Query> queries = fx.runtime->make_queries(0, 1, 6);
  const auto serial =
      core::prepare_evaluation(*fx.runtime, queries, ec, 3, 1234, 1);
  const auto parallel =
      core::prepare_evaluation(*fx.runtime, queries, ec, 3, 1234, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].default_index, parallel[i].default_index);
    ASSERT_EQ(serial[i].cost_samples.size(), parallel[i].cost_samples.size());
    for (std::size_t p = 0; p < serial[i].cost_samples.size(); ++p) {
      ASSERT_EQ(serial[i].cost_samples[p], parallel[i].cost_samples[p]);
    }
    ASSERT_EQ(serial[i].mean_cost, parallel[i].mean_cost);
  }
}

TEST(ParallelReplay, GateVerdictsBitIdenticalAcrossThreadCounts) {
  PipelineFixture fx;
  core::LoamDeployment loam(fx.runtime.get(), fx.config(true));
  loam.train();
  core::DeploymentGateConfig serial_gate;
  serial_gate.sample_queries = 8;
  serial_gate.replay_runs = 3;
  serial_gate.replay_threads = 1;
  core::DeploymentGateConfig parallel_gate = serial_gate;
  parallel_gate.replay_threads = 8;
  // make_queries mutates the runtime RNG; evaluate from identical state by
  // re-running against the same runtime is NOT possible, so compare two
  // freshly constructed identical runtimes instead.
  PipelineFixture fx2;
  core::LoamDeployment loam2(fx2.runtime.get(), fx2.config(true));
  loam2.train();
  const core::DeploymentGateReport a =
      core::evaluate_deployment(*fx.runtime, loam, serial_gate);
  const core::DeploymentGateReport b =
      core::evaluate_deployment(*fx2.runtime, loam2, parallel_gate);
  EXPECT_EQ(a.approved, b.approved);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.improved, b.improved);
  EXPECT_EQ(a.regressed, b.regressed);
  EXPECT_EQ(a.default_cost, b.default_cost);
  EXPECT_EQ(a.model_cost, b.model_cost);
  EXPECT_EQ(a.gain, b.gain);
}

}  // namespace
}  // namespace loam
