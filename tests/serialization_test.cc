// Tests of persistence: NN checkpoints, predictor save/load round trips, and
// the repository cost-log format.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <vector>

#include "core/predictor.h"
#include "nn/serialize.h"
#include "util/hash.h"
#include "warehouse/repository_io.h"

namespace loam {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("loam_test_") + name))
      .string();
}

TEST(NnSerialize, RoundTripPreservesValues) {
  Rng rng(1);
  nn::Linear a("layer", 6, 4, rng);
  std::stringstream buffer;
  const std::size_t bytes = nn::save_parameters(a.parameters(), buffer);
  EXPECT_GT(bytes, 6u * 4u * sizeof(float));

  nn::Linear b("layer", 6, 4, rng);  // different init
  nn::load_parameters(b.parameters(), buffer);
  nn::Mat x(2, 6);
  x.glorot_init(rng);
  nn::Mat ya = a.forward(x);
  nn::Mat yb = b.forward(x);
  for (int i = 0; i < ya.rows(); ++i) {
    for (int j = 0; j < ya.cols(); ++j) {
      EXPECT_FLOAT_EQ(ya.at(i, j), yb.at(i, j));
    }
  }
}

TEST(NnSerialize, RejectsBadMagic) {
  Rng rng(2);
  nn::Linear a("layer", 3, 3, rng);
  std::stringstream buffer;
  buffer << "definitely not a checkpoint";
  EXPECT_THROW(nn::load_parameters(a.parameters(), buffer), std::runtime_error);
}

TEST(NnSerialize, RejectsShapeMismatch) {
  Rng rng(3);
  nn::Linear a("layer", 5, 4, rng);
  std::stringstream buffer;
  nn::save_parameters(a.parameters(), buffer);
  nn::Linear wrong("layer", 5, 8, rng);
  EXPECT_THROW(nn::load_parameters(wrong.parameters(), buffer), std::runtime_error);
}

TEST(NnSerialize, RejectsNameMismatch) {
  Rng rng(4);
  nn::Linear a("alpha", 3, 3, rng);
  std::stringstream buffer;
  nn::save_parameters(a.parameters(), buffer);
  nn::Linear other("beta", 3, 3, rng);
  EXPECT_THROW(nn::load_parameters(other.parameters(), buffer), std::runtime_error);
}

TEST(NnSerialize, RejectsTruncation) {
  Rng rng(5);
  nn::Linear a("layer", 8, 8, rng);
  std::stringstream buffer;
  nn::save_parameters(a.parameters(), buffer);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  EXPECT_THROW(nn::load_parameters(a.parameters(), half), std::runtime_error);
}

TEST(NnSerialize, WritesV2MagicWithCrcFooter) {
  Rng rng(7);
  nn::Linear a("layer", 4, 4, rng);
  std::stringstream buffer;
  const std::size_t bytes = nn::save_parameters(a.parameters(), buffer);
  const std::string data = buffer.str();
  ASSERT_EQ(data.size(), bytes);
  ASSERT_GE(data.size(), 12u);
  EXPECT_EQ(data.substr(0, 7), "LOAMNN2");
  // Footer = CRC-32 of everything after the 8-byte magic.
  std::uint32_t stored = 0;
  std::memcpy(&stored, data.data() + data.size() - 4, 4);
  EXPECT_EQ(stored, crc32(data.data() + 8, data.size() - 12));
}

TEST(NnSerialize, DetectsSingleBitCorruption) {
  Rng rng(8);
  nn::Linear a("layer", 6, 4, rng);
  std::stringstream buffer;
  nn::save_parameters(a.parameters(), buffer);
  std::string data = buffer.str();
  // Flip one bit inside the float payload (just before the 4-byte footer):
  // every structural check (magic, count, names, shapes) still passes, so
  // only the checksum can catch it.
  data[data.size() - 5] ^= 0x01;
  std::stringstream corrupt(data);
  nn::Linear b("layer", 6, 4, rng);
  EXPECT_THROW(nn::load_parameters(b.parameters(), corrupt), std::runtime_error);
}

TEST(NnSerialize, StillLoadsLegacyV1Checkpoints) {
  Rng rng(9);
  nn::Linear a("layer", 3, 2, rng);
  // Hand-write the v1 layout: "LOAMNN1\0" magic, u32 count, then per
  // parameter u32 name_len | name | u32 rows | u32 cols | floats. No footer.
  std::stringstream buffer;
  const auto put_u32 = [&buffer](std::uint32_t v) {
    buffer.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const char magic_v1[8] = {'L', 'O', 'A', 'M', 'N', 'N', '1', '\0'};
  buffer.write(magic_v1, sizeof(magic_v1));
  const std::vector<nn::Parameter*> params = a.parameters();
  put_u32(static_cast<std::uint32_t>(params.size()));
  for (const nn::Parameter* p : params) {
    put_u32(static_cast<std::uint32_t>(p->name.size()));
    buffer.write(p->name.data(),
                 static_cast<std::streamsize>(p->name.size()));
    put_u32(static_cast<std::uint32_t>(p->value.rows()));
    put_u32(static_cast<std::uint32_t>(p->value.cols()));
    buffer.write(reinterpret_cast<const char*>(p->value.data()),
                 static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }

  nn::Linear b("layer", 3, 2, rng);  // different init
  nn::load_parameters(b.parameters(), buffer);
  nn::Mat x(2, 3);
  x.glorot_init(rng);
  nn::Mat ya = a.forward(x);
  nn::Mat yb = b.forward(x);
  for (int i = 0; i < ya.rows(); ++i) {
    for (int j = 0; j < ya.cols(); ++j) {
      EXPECT_FLOAT_EQ(ya.at(i, j), yb.at(i, j));
    }
  }
}

TEST(PredictorCheckpoint, RoundTripReproducesPredictions) {
  Rng rng(6);
  const int dim = 10;
  core::PredictorConfig cfg;
  cfg.epochs = 3;
  cfg.hidden_dim = 12;
  cfg.embed_dim = 6;
  core::AdaptiveCostPredictor trained(dim, cfg);
  // Small synthetic fit so the scaler is non-trivial.
  std::vector<core::TrainingExample> train;
  for (int i = 0; i < 40; ++i) {
    core::TrainingExample ex;
    ex.tree.features = nn::Mat(3, dim);
    ex.tree.features.glorot_init(rng);
    ex.tree.left = {1, -1, -1};
    ex.tree.right = {2, -1, -1};
    ex.tree.root = 0;
    ex.cpu_cost = 100.0 + 10.0 * i;
    train.push_back(std::move(ex));
  }
  trained.fit(train, {});

  const std::string path = temp_path("predictor.ckpt");
  trained.save(path);
  core::AdaptiveCostPredictor restored(dim, cfg);
  restored.load(path);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(trained.predict(train[static_cast<std::size_t>(i)].tree),
                     restored.predict(train[static_cast<std::size_t>(i)].tree));
  }
  std::remove(path.c_str());
}

TEST(PredictorCheckpoint, ArchitectureMismatchRejected) {
  core::PredictorConfig small;
  small.hidden_dim = 8;
  small.epochs = 1;
  core::PredictorConfig large = small;
  large.hidden_dim = 16;
  core::AdaptiveCostPredictor a(10, small);
  const std::string path = temp_path("predictor_shape.ckpt");
  a.save(path);
  core::AdaptiveCostPredictor b(10, large);
  EXPECT_THROW(b.load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CostLog, RoundTrip) {
  std::vector<warehouse::CostLogRow> rows;
  for (int i = 0; i < 5; ++i) {
    warehouse::CostLogRow r;
    r.template_id = "proj.q" + std::to_string(i);
    r.param_signature = 1000u + static_cast<std::uint64_t>(i);
    r.day = i;
    r.cpu_cost = 12345.678 * (i + 1);
    r.latency_s = 1.5 * i;
    r.stages = 3 + i;
    r.env.cpu_idle = 0.5 + 0.01 * i;
    r.env.io_wait = 0.05;
    r.env.load5_norm = 0.3;
    r.env.mem_usage = 0.6;
    rows.push_back(std::move(r));
  }
  std::stringstream buffer;
  warehouse::write_cost_log(rows, buffer);
  const std::vector<warehouse::CostLogRow> back = warehouse::read_cost_log(buffer);
  ASSERT_EQ(back.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(back[i].template_id, rows[i].template_id);
    EXPECT_EQ(back[i].param_signature, rows[i].param_signature);
    EXPECT_EQ(back[i].day, rows[i].day);
    EXPECT_DOUBLE_EQ(back[i].cpu_cost, rows[i].cpu_cost);
    EXPECT_DOUBLE_EQ(back[i].env.cpu_idle, rows[i].env.cpu_idle);
  }
}

TEST(CostLog, RejectsBadHeaderAndRows) {
  std::stringstream bad_header("nope\n1\t2\t3\n");
  EXPECT_THROW(warehouse::read_cost_log(bad_header), std::runtime_error);

  std::stringstream truncated;
  warehouse::write_cost_log({}, truncated);
  truncated << "proj.q0\t12\t3\n";  // far too few columns
  EXPECT_THROW(warehouse::read_cost_log(truncated), std::runtime_error);
}

TEST(CostLog, FlattensRepository) {
  warehouse::QueryRepository repo;
  warehouse::QueryRecord rec;
  rec.query.template_id = "t.q1";
  rec.query.param_signature = 42;
  rec.day = 3;
  rec.exec.cpu_cost = 999.0;
  rec.exec.latency_s = 2.0;
  warehouse::StageExecution stage;
  stage.stage_id = 0;
  rec.exec.stages.push_back(stage);
  repo.log(std::move(rec));

  const auto rows = warehouse::to_cost_log(repo);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].template_id, "t.q1");
  EXPECT_EQ(rows[0].stages, 1);
  EXPECT_DOUBLE_EQ(rows[0].cpu_cost, 999.0);
}

}  // namespace
}  // namespace loam
