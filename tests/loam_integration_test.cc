// Integration and property tests of the full LOAM pipeline: history
// simulation -> training -> steering -> flighting evaluation, plus
// cross-module invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/deviance.h"
#include "core/loam.h"

namespace loam::core {
namespace {

warehouse::ProjectArchetype small_archetype(std::uint64_t seed) {
  warehouse::ProjectArchetype a;
  a.name = "integration" + std::to_string(seed);
  a.seed = seed;
  a.n_tables = 14;
  a.n_templates = 10;
  a.queries_per_day = 60.0;
  a.stats_coverage = 0.2;
  a.cluster_machines = 24;
  return a;
}

LoamConfig small_config() {
  LoamConfig cfg;
  cfg.train_first_day = 0;
  cfg.train_last_day = 5;
  cfg.max_train_queries = 250;
  cfg.candidate_sample_queries = 20;
  cfg.predictor.epochs = 6;
  cfg.predictor.hidden_dim = 24;
  return cfg;
}

class PipelineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    RuntimeConfig rc;
    rc.seed = 99;
    runtime = std::make_unique<ProjectRuntime>(small_archetype(1), rc);
    runtime->simulate_history(/*days=*/6, /*max_queries_per_day=*/60);
  }
  std::unique_ptr<ProjectRuntime> runtime;
};

TEST_F(PipelineFixture, HistorySimulationPopulatesRepository) {
  EXPECT_GT(runtime->repository().size(), 100u);
  EXPECT_EQ(runtime->repository().max_day(), 5);
  for (const warehouse::QueryRecord& r : runtime->repository().records()) {
    EXPECT_TRUE(r.is_default);
    EXPECT_GT(r.exec.cpu_cost, 0.0);
    EXPECT_FALSE(r.exec.stages.empty());
    EXPECT_EQ(r.knobs, warehouse::PlannerKnobs());
  }
  EXPECT_EQ(runtime->cluster_env_history().size(), runtime->repository().size());
}

TEST_F(PipelineFixture, TrainingBuildsDataAndModel) {
  LoamDeployment loam(runtime.get(), small_config());
  loam.train();
  EXPECT_GT(loam.data().default_plans.size(), 50u);
  EXPECT_GT(loam.data().candidate_plans.size(), 5u);
  EXPECT_GT(loam.model().model_bytes(), 0u);
  EXPECT_GT(loam.train_seconds(), 0.0);
  // Default plans carry the observed costs.
  for (const TrainingExample& ex : loam.data().default_plans) {
    EXPECT_GT(ex.cpu_cost, 0.0);
    EXPECT_GT(ex.tree.node_count(), 0);
  }
}

TEST_F(PipelineFixture, LatencyTargetSwitchesLabels) {
  LoamConfig cpu_cfg = small_config();
  LoamDeployment cpu_model(runtime.get(), cpu_cfg);
  cpu_model.train();
  LoamConfig lat_cfg = small_config();
  lat_cfg.cost_target = CostTarget::kLatency;
  LoamDeployment lat_model(runtime.get(), lat_cfg);
  lat_model.train();
  ASSERT_EQ(cpu_model.data().default_plans.size(),
            lat_model.data().default_plans.size());
  // Latency labels are seconds (small), CPU labels are cost units (large).
  double cpu_mean = 0.0, lat_mean = 0.0;
  for (std::size_t i = 0; i < cpu_model.data().default_plans.size(); ++i) {
    cpu_mean += cpu_model.data().default_plans[i].cpu_cost;
    lat_mean += lat_model.data().default_plans[i].cpu_cost;
  }
  EXPECT_GT(cpu_mean, 100.0 * lat_mean);
  EXPECT_GT(lat_mean, 0.0);
}

TEST_F(PipelineFixture, TrainingCapRespected) {
  LoamConfig cfg = small_config();
  cfg.max_train_queries = 40;
  LoamDeployment loam(runtime.get(), cfg);
  loam.train();
  EXPECT_LE(loam.data().default_plans.size(), 40u);
}

TEST_F(PipelineFixture, OptimizeReturnsValidChoice) {
  LoamDeployment loam(runtime.get(), small_config());
  loam.train();
  const auto queries = runtime->make_queries(6, 6, 5);
  ASSERT_FALSE(queries.empty());
  for (const warehouse::Query& q : queries) {
    const LoamDeployment::Choice choice = loam.optimize(q);
    ASSERT_FALSE(choice.generation.plans.empty());
    EXPECT_GE(choice.chosen, 0);
    EXPECT_LT(choice.chosen, static_cast<int>(choice.generation.plans.size()));
    ASSERT_EQ(choice.predicted.size(), choice.generation.plans.size());
    // The chosen plan carries the minimum predicted cost.
    const double chosen_pred =
        choice.predicted[static_cast<std::size_t>(choice.chosen)];
    for (double p : choice.predicted) EXPECT_GE(p + 1e-9, chosen_pred);
    // All predictions are positive, finite costs.
    for (double p : choice.predicted) {
      EXPECT_GT(p, 0.0);
      EXPECT_TRUE(std::isfinite(p));
    }
  }
}

TEST_F(PipelineFixture, StrategySelectionsAreConsistent) {
  LoamDeployment loam(runtime.get(), small_config());
  loam.train();
  const auto queries = runtime->make_queries(6, 6, 3);
  PlanExplorer explorer(&runtime->optimizer());
  for (const warehouse::Query& q : queries) {
    const CandidateGeneration gen = explorer.explore(q);
    // select() must agree with select_with_strategy(configured strategy).
    EXPECT_EQ(loam.select(gen),
              loam.select_with_strategy(
                  gen, EnvInferenceStrategy::kRepresentativeMean));
  }
}

TEST_F(PipelineFixture, WorkloadSummaryReflectsHistory) {
  const WorkloadSummary s = summarize_workload(*runtime, 0, 5);
  ASSERT_EQ(s.queries_per_day.size(), 6u);
  int total = 0;
  for (int q : s.queries_per_day) total += q;
  EXPECT_EQ(static_cast<std::size_t>(total), runtime->repository().size());
  EXPECT_GE(s.stable_table_ratio, 0.0);
  EXPECT_LE(s.stable_table_ratio, 1.0);
}

TEST(PairedReplay, SharedEnvironmentAcrossCandidates) {
  RuntimeConfig rc;
  rc.seed = 7;
  ProjectRuntime runtime(small_archetype(2), rc);
  const auto queries = runtime.make_queries(0, 0, 3);
  PlanExplorer explorer(&runtime.optimizer());
  for (const warehouse::Query& q : queries) {
    const CandidateGeneration gen = explorer.explore(q);
    const auto samples = paired_replay(gen.plans, rc.cluster, rc.executor, 4, 11);
    ASSERT_EQ(samples.size(), gen.plans.size());
    for (const auto& s : samples) {
      ASSERT_EQ(s.size(), 4u);
      for (double c : s) EXPECT_GT(c, 0.0);
    }
    // Identical plans under paired replay produce identical costs; we verify
    // the sharper property that replaying the same plan list twice with the
    // same seed reproduces every sample.
    const auto again = paired_replay(gen.plans, rc.cluster, rc.executor, 4, 11);
    for (std::size_t p = 0; p < samples.size(); ++p) {
      for (std::size_t r = 0; r < samples[p].size(); ++r) {
        EXPECT_DOUBLE_EQ(samples[p][r], again[p][r]);
      }
    }
  }
}

TEST(PairedReplay, OracleNeverAboveAnyFixedChoice) {
  // Property: for every query, empirical oracle cost <= cost of any fixed
  // selection (Theorem 1 at the sample level).
  RuntimeConfig rc;
  rc.seed = 21;
  ProjectRuntime runtime(small_archetype(3), rc);
  const auto queries = runtime.make_queries(0, 0, 6);
  auto eval = prepare_evaluation(runtime, queries, ExplorerConfig(), 5, 77);
  for (const EvaluatedQuery& eq : eval) {
    const double oracle = empirical_oracle_cost(eq.cost_samples);
    for (std::size_t c = 0; c < eq.mean_cost.size(); ++c) {
      EXPECT_LE(oracle, eq.mean_cost[c] + 1e-6);
      EXPECT_GE(empirical_expected_deviance(eq.cost_samples, static_cast<int>(c)),
                0.0);
    }
  }
}

// Property sweep over seeds: the full pipeline is deterministic given a seed
// and never produces invalid selections.
class PipelineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeedSweep, DeterministicEndToEnd) {
  const std::uint64_t seed = GetParam();
  auto run_once = [&] {
    RuntimeConfig rc;
    rc.seed = seed;
    ProjectRuntime runtime(small_archetype(seed), rc);
    runtime.simulate_history(3, 40);
    LoamConfig cfg = small_config();
    cfg.train_last_day = 2;
    cfg.predictor.epochs = 3;
    LoamDeployment loam(&runtime, cfg);
    loam.train();
    const auto queries = runtime.make_queries(3, 3, 3);
    std::vector<int> choices;
    for (const warehouse::Query& q : queries) {
      choices.push_back(loam.optimize(q).chosen);
    }
    return std::make_pair(runtime.repository().size(), choices);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweep,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

}  // namespace
}  // namespace loam::core
