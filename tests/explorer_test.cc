// Tests of the plan explorer: candidate diversity, dedup, default-plan
// retention, top-k pruning and the engine-side sanity filter.
#include <gtest/gtest.h>

#include <set>

#include "core/explorer.h"
#include "warehouse/workload.h"

namespace loam::core {
namespace {

struct Fixture {
  warehouse::WorkloadGenerator gen{66};
  warehouse::Project project;
  std::unique_ptr<warehouse::NativeOptimizer> optimizer;

  Fixture(double stats_coverage = 0.2) {
    warehouse::ProjectArchetype a;
    a.name = "explorer";
    a.seed = 67;
    a.n_tables = 16;
    a.n_templates = 12;
    a.stats_coverage = stats_coverage;
    a.join_tables_mean = 4.0;
    project = gen.make_project(a);
    optimizer = std::make_unique<warehouse::NativeOptimizer>(project.catalog);
  }

  warehouse::Query query(int t) {
    Rng rng(70 + static_cast<std::uint64_t>(t));
    return gen.instantiate(project,
                           project.templates[static_cast<std::size_t>(t) %
                                             project.templates.size()],
                           0, rng);
  }
};

TEST(Explorer, AlwaysIncludesDefaultPlan) {
  Fixture fx;
  PlanExplorer explorer(fx.optimizer.get());
  for (int t = 0; t < 8; ++t) {
    const CandidateGeneration gen = explorer.explore(fx.query(t));
    ASSERT_FALSE(gen.plans.empty());
    ASSERT_GE(gen.default_index, 0);
    ASSERT_LT(gen.default_index, static_cast<int>(gen.plans.size()));
    // The default slot carries shipping-default knobs.
    EXPECT_EQ(gen.knobs[static_cast<std::size_t>(gen.default_index)],
              warehouse::PlannerKnobs());
    // And its plan equals what the native optimizer produces unsteered.
    EXPECT_EQ(gen.plans[static_cast<std::size_t>(gen.default_index)].signature(),
              fx.optimizer->optimize(fx.query(t)).signature());
  }
}

TEST(Explorer, RespectsTopK) {
  Fixture fx;
  ExplorerConfig cfg;
  cfg.top_k = 3;
  PlanExplorer explorer(fx.optimizer.get(), cfg);
  for (int t = 0; t < 8; ++t) {
    const CandidateGeneration gen = explorer.explore(fx.query(t));
    EXPECT_LE(static_cast<int>(gen.plans.size()), 3);
  }
}

TEST(Explorer, CandidatesAreStructurallyDistinct) {
  Fixture fx;
  PlanExplorer explorer(fx.optimizer.get());
  for (int t = 0; t < 8; ++t) {
    const CandidateGeneration gen = explorer.explore(fx.query(t));
    std::set<std::uint64_t> sigs;
    for (const warehouse::Plan& p : gen.plans) sigs.insert(p.signature());
    EXPECT_EQ(sigs.size(), gen.plans.size());
  }
}

TEST(Explorer, ProducesDiversityOnJoinHeavyQueries) {
  Fixture fx(/*stats_coverage=*/0.0);  // syntactic defaults -> reorder diversity
  PlanExplorer explorer(fx.optimizer.get());
  int multi_candidate_queries = 0;
  for (int t = 0; t < 12; ++t) {
    warehouse::Query q = fx.query(t);
    if (q.tables.size() < 3) continue;
    const CandidateGeneration gen = explorer.explore(q);
    if (gen.plans.size() >= 2) ++multi_candidate_queries;
  }
  EXPECT_GT(multi_candidate_queries, 3);
}

TEST(Explorer, SanityPruningDropsSelfCondemnedPlans) {
  Fixture fx(/*stats_coverage=*/1.0);
  ExplorerConfig strict;
  strict.sanity_factor = 1.0;  // nothing worse than the default survives
  strict.risky_trials = true;
  PlanExplorer tight(fx.optimizer.get(), strict);
  ExplorerConfig loose = strict;
  loose.sanity_factor = -1.0;  // disabled
  PlanExplorer open(fx.optimizer.get(), loose);
  int tight_total = 0, open_total = 0;
  for (int t = 0; t < 10; ++t) {
    tight_total += static_cast<int>(tight.explore(fx.query(t)).plans.size());
    open_total += static_cast<int>(open.explore(fx.query(t)).plans.size());
  }
  EXPECT_LE(tight_total, open_total);
}

TEST(Explorer, RiskyTrialsWidenTheCandidatePool) {
  Fixture fx;
  ExplorerConfig expert;
  expert.sanity_factor = -1.0;
  expert.top_k = 50;
  ExplorerConfig risky = expert;
  risky.risky_trials = true;
  PlanExplorer a(fx.optimizer.get(), expert);
  PlanExplorer b(fx.optimizer.get(), risky);
  int expert_total = 0, risky_total = 0;
  for (int t = 0; t < 10; ++t) {
    expert_total += static_cast<int>(a.explore(fx.query(t)).plans.size());
    risky_total += static_cast<int>(b.explore(fx.query(t)).plans.size());
  }
  EXPECT_GT(risky_total, expert_total);
}

TEST(Explorer, ReportsGenerationTimeAndTrials) {
  Fixture fx;
  PlanExplorer explorer(fx.optimizer.get());
  const CandidateGeneration gen = explorer.explore(fx.query(0));
  EXPECT_GT(gen.trials, 1);
  EXPECT_GE(gen.generation_seconds, 0.0);
  // Section 7.2.1: candidate generation takes well under 0.1 s per query.
  EXPECT_LT(gen.generation_seconds, 0.1);
}

TEST(Explorer, SingleTableQueriesStillServed) {
  Fixture fx;
  warehouse::Query q;
  q.tables = {0};
  PlanExplorer explorer(fx.optimizer.get());
  const CandidateGeneration gen = explorer.explore(q);
  EXPECT_GE(gen.plans.size(), 1u);
  EXPECT_EQ(gen.default_index, 0);
}

}  // namespace
}  // namespace loam::core
