// Unit tests of the NN substrate, including finite-difference gradient
// checks for every layer type — the backprop here is hand-written, so the
// checks are the correctness backbone of all learned components.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/gcn.h"
#include "nn/layers.h"
#include "nn/mat.h"
#include "nn/optimizer.h"
#include "nn/transformer.h"
#include "nn/tree_conv.h"

namespace loam::nn {
namespace {

TEST(MatTest, MatmulMatchesManual) {
  Mat a(2, 3), b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  Mat c;
  matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(MatTest, TransposedMatmulsAgreeWithExplicitTranspose) {
  Rng rng(3);
  Mat a(4, 3), b(4, 5);
  a.glorot_init(rng);
  b.glorot_init(rng);
  // a^T b via matmul_at_b vs. manual transpose.
  Mat at(3, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  }
  Mat expect, got;
  matmul(at, b, expect);
  matmul_at_b(a, b, got);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) EXPECT_NEAR(got.at(i, j), expect.at(i, j), 1e-5);
  }
  // a b^T via matmul_a_bt.
  Mat c(5, 3);
  c.glorot_init(rng);
  Mat ct(3, 5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 3; ++j) ct.at(j, i) = c.at(i, j);
  }
  Mat expect2, got2;
  matmul(a, ct, expect2);
  matmul_a_bt(a, c, got2);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 5; ++j) EXPECT_NEAR(got2.at(i, j), expect2.at(i, j), 1e-5);
  }
}

TEST(MatTest, AccumulateMode) {
  Mat a(1, 2), b(2, 1), out(1, 1);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  b.at(0, 0) = 3;
  b.at(1, 0) = 4;
  out.at(0, 0) = 100;
  matmul(a, b, out, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(out.at(0, 0), 111);
}

TEST(MatTest, RowBiasAndBiasGrad) {
  Mat x(2, 3);
  x.fill(1.0f);
  Mat bias(1, 3);
  bias.at(0, 1) = 2.0f;
  add_row_bias(x, bias);
  EXPECT_FLOAT_EQ(x.at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(x.at(1, 0), 1.0f);
  Mat gb(1, 3);
  accumulate_bias_grad(x, gb);
  EXPECT_FLOAT_EQ(gb.at(0, 1), 6.0f);
}

// -----------------------------------------------------------------------
// Finite-difference gradient checking machinery.
// -----------------------------------------------------------------------

// Checks d(scalar loss)/d(param) for every parameter of a module against
// central differences. `loss` must re-run the full forward pass.
void check_param_gradients(const std::vector<Parameter*>& params,
                           const std::function<double()>& loss,
                           const std::function<void()>& backward,
                           float tolerance = 2e-2) {
  for (Parameter* p : params) p->zero_grad();
  backward();
  const float eps = 1e-2f;
  for (Parameter* p : params) {
    // Probe a handful of coordinates per parameter.
    const std::size_t n = p->value.size();
    for (std::size_t probe = 0; probe < std::min<std::size_t>(n, 5); ++probe) {
      const std::size_t i = (probe * 7919) % n;
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const double up = loss();
      p->value.data()[i] = orig - eps;
      const double down = loss();
      p->value.data()[i] = orig;
      const double fd = (up - down) / (2.0 * eps);
      const double an = p->grad.data()[i];
      EXPECT_NEAR(an, fd, tolerance * std::max(1.0, std::abs(fd)))
          << p->name << "[" << i << "]";
    }
  }
}

Tree make_test_tree(int nodes, int dim, Rng& rng) {
  Tree t;
  t.features = Mat(nodes, dim);
  t.features.glorot_init(rng);
  t.left.assign(static_cast<std::size_t>(nodes), -1);
  t.right.assign(static_cast<std::size_t>(nodes), -1);
  // Left-deep chain with occasional right children: node i has children
  // i*2+1 / i*2+2 when in range (heap shape).
  for (int i = 0; i < nodes; ++i) {
    if (2 * i + 1 < nodes) t.left[static_cast<std::size_t>(i)] = 2 * i + 1;
    if (2 * i + 2 < nodes) t.right[static_cast<std::size_t>(i)] = 2 * i + 2;
  }
  t.root = 0;
  return t;
}

TEST(GradCheck, Linear) {
  Rng rng(5);
  Linear lin("lin", 4, 3, rng);
  Mat x(2, 4);
  x.glorot_init(rng);
  auto loss = [&] {
    Mat y = lin.forward(x);
    double s = 0.0;
    for (int i = 0; i < y.rows(); ++i) {
      for (int j = 0; j < y.cols(); ++j) s += 0.5 * y.at(i, j) * y.at(i, j);
    }
    return s;
  };
  auto backward = [&] {
    Mat y = lin.forward(x);
    lin.backward(y);  // d(0.5 y^2)/dy = y
  };
  check_param_gradients(lin.parameters(), loss, backward);
}

TEST(GradCheck, TreeConvNet) {
  Rng rng(6);
  TreeConvNet::Config cfg;
  cfg.input_dim = 6;
  cfg.hidden_dim = 8;
  cfg.embed_dim = 4;
  cfg.layers = 2;
  TreeConvNet net(cfg, rng);
  Tree tree = make_test_tree(7, 6, rng);
  auto loss = [&] {
    Mat e = net.forward(tree);
    double s = 0.0;
    for (int j = 0; j < e.cols(); ++j) s += 0.5 * e.at(0, j) * e.at(0, j);
    return s;
  };
  auto backward = [&] {
    Mat e = net.forward(tree);
    net.backward(e);
  };
  check_param_gradients(net.parameters(), loss, backward, 5e-2f);
}

TEST(GradCheck, GcnNet) {
  Rng rng(7);
  GcnNet::Config cfg;
  cfg.input_dim = 6;
  cfg.hidden_dim = 8;
  cfg.embed_dim = 4;
  cfg.layers = 2;
  GcnNet net(cfg, rng);
  Tree tree = make_test_tree(6, 6, rng);
  auto loss = [&] {
    Mat e = net.forward(tree);
    double s = 0.0;
    for (int j = 0; j < e.cols(); ++j) s += 0.5 * e.at(0, j) * e.at(0, j);
    return s;
  };
  auto backward = [&] {
    Mat e = net.forward(tree);
    net.backward(e);
  };
  check_param_gradients(net.parameters(), loss, backward, 5e-2f);
}

TEST(GradCheck, TransformerEncoder) {
  Rng rng(8);
  TransformerEncoder::Config cfg;
  cfg.input_dim = 6;
  cfg.model_dim = 8;
  cfg.heads = 2;
  cfg.ffn_dim = 12;
  cfg.embed_dim = 4;
  TransformerEncoder net(cfg, rng);
  Tree tree = make_test_tree(5, 6, rng);
  auto loss = [&] {
    Mat e = net.forward(tree);
    double s = 0.0;
    for (int j = 0; j < e.cols(); ++j) s += 0.5 * e.at(0, j) * e.at(0, j);
    return s;
  };
  auto backward = [&] {
    Mat e = net.forward(tree);
    net.backward(e);
  };
  check_param_gradients(net.parameters(), loss, backward, 6e-2f);
}

TEST(Layers, ReluMasksNegative) {
  Relu relu;
  Mat x(1, 3);
  x.at(0, 0) = -1.0f;
  x.at(0, 1) = 0.0f;
  x.at(0, 2) = 2.0f;
  Mat y = relu.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2.0f);
  Mat g(1, 3);
  g.fill(1.0f);
  Mat gi = relu.backward(g);
  EXPECT_FLOAT_EQ(gi.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gi.at(0, 2), 1.0f);
}

TEST(Layers, GradientReversalNegatesAndScales) {
  GradientReversal grl;
  grl.set_lambda(0.5f);
  Mat x(1, 2);
  x.at(0, 0) = 3.0f;
  const Mat& y = grl.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);  // identity forward
  Mat g(1, 2);
  g.at(0, 0) = 2.0f;
  Mat gi = grl.backward(g);
  EXPECT_FLOAT_EQ(gi.at(0, 0), -1.0f);  // -lambda * g
}

TEST(Layers, SoftmaxRowsSumToOne) {
  Mat x(2, 3);
  x.at(0, 0) = 1;
  x.at(0, 1) = 2;
  x.at(0, 2) = 3;
  x.at(1, 0) = -5;
  x.at(1, 1) = 0;
  x.at(1, 2) = 5;
  Mat p = row_softmax(x);
  for (int i = 0; i < 2; ++i) {
    float s = 0;
    for (int j = 0; j < 3; ++j) {
      s += p.at(i, j);
      EXPECT_GT(p.at(i, j), 0.0f);
    }
    EXPECT_NEAR(s, 1.0f, 1e-6);
  }
  EXPECT_GT(p.at(0, 2), p.at(0, 0));
}

TEST(Layers, CrossEntropyGradientSumsToZero) {
  Mat logits(2, 2);
  logits.at(0, 0) = 1.0f;
  logits.at(0, 1) = -1.0f;
  logits.at(1, 0) = 0.3f;
  logits.at(1, 1) = 0.9f;
  Mat grad;
  const double loss = softmax_cross_entropy(logits, {0, 1}, grad);
  EXPECT_GT(loss, 0.0);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(grad.at(i, 0) + grad.at(i, 1), 0.0f, 1e-6);
  }
}

TEST(Layers, MseLossAndGradient) {
  Mat pred(2, 1);
  pred.at(0, 0) = 1.0f;
  pred.at(1, 0) = 3.0f;
  Mat grad;
  const double loss = mse_loss(pred, {0.0f, 1.0f}, grad);
  EXPECT_NEAR(loss, (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(grad.at(0, 0), 2.0 * 1.0 / 2, 1e-6);
  EXPECT_NEAR(grad.at(1, 0), 2.0 * 2.0 / 2, 1e-6);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  // Minimize ||w - target||^2 with Adam.
  Parameter w("w", 1, 4);
  const float target[] = {1.0f, -2.0f, 0.5f, 3.0f};
  Adam opt({&w}, {.lr = 0.05});
  for (int step = 0; step < 500; ++step) {
    opt.zero_grad();
    for (int j = 0; j < 4; ++j) {
      w.grad.at(0, j) = 2.0f * (w.value.at(0, j) - target[j]);
    }
    opt.step();
  }
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(w.value.at(0, j), target[j], 1e-2);
}

TEST(Optimizer, GradientClippingBoundsUpdate) {
  Parameter w("w", 1, 2);
  AdamOptions opts;
  opts.lr = 1.0;
  opts.clip_norm = 1.0;
  Adam opt({&w}, opts);
  opt.zero_grad();
  w.grad.at(0, 0) = 1e6f;
  w.grad.at(0, 1) = 1e6f;
  opt.step();
  // With clipping the effective step stays near lr regardless of raw grads.
  EXPECT_LT(std::abs(w.value.at(0, 0)), 2.0f);
}

TEST(Optimizer, ParameterAccounting) {
  Rng rng(9);
  Linear lin("lin", 10, 5, rng);
  Adam opt(lin.parameters());
  EXPECT_EQ(opt.parameter_count(), 10u * 5u + 5u);
  EXPECT_EQ(opt.parameter_bytes(), (10u * 5u + 5u) * sizeof(float));
}

TEST(TreeConvTest, MissingChildrenActAsZeros) {
  Rng rng(10);
  TreeConvLayer layer("t", 3, 2, rng);
  // Single node, no children.
  Mat x(1, 3);
  x.at(0, 0) = 1.0f;
  Mat y = layer.forward(x, {-1}, {-1});
  ASSERT_EQ(y.rows(), 1);
  // Result must equal x W_self + b exactly (child terms vanish) — verified
  // by comparing against a two-node tree where the child is all zeros.
  Mat x2(2, 3);
  x2.at(0, 0) = 1.0f;
  TreeConvLayer layer2 = layer;
  Mat y2 = layer2.forward(x2, {1, -1}, {-1, -1});
  for (int j = 0; j < 2; ++j) EXPECT_NEAR(y.at(0, j), y2.at(0, j), 1e-6);
}

TEST(TreeConvTest, PoolingPicksMaxAndRoutesGradient) {
  DynamicMaxPool pool;
  Mat x(3, 2);
  x.at(0, 0) = 1;
  x.at(1, 0) = 5;
  x.at(2, 0) = 3;
  x.at(0, 1) = 9;
  x.at(1, 1) = 2;
  x.at(2, 1) = 4;
  Mat y = pool.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 5);
  EXPECT_FLOAT_EQ(y.at(0, 1), 9);
  Mat g(1, 2);
  g.at(0, 0) = 1.0f;
  g.at(0, 1) = 2.0f;
  Mat gi = pool.backward(g);
  EXPECT_FLOAT_EQ(gi.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(gi.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(gi.at(2, 0), 0.0f);
}

TEST(GcnTest, AdjacencyIsSymmetricNormalized) {
  Rng rng(11);
  Tree tree = make_test_tree(3, 2, rng);
  const NormalizedAdjacency adj = NormalizedAdjacency::from_tree(tree);
  // Row sums of D^{-1/2}(A+I)D^{-1/2} equal 1 only for regular graphs, but
  // symmetry must always hold: entry (i,j) == entry (j,i).
  std::map<std::pair<int, int>, float> entries;
  for (std::size_t e = 0; e < adj.src.size(); ++e) {
    entries[{adj.src[e], adj.dst[e]}] = adj.weight[e];
  }
  for (const auto& [key, w] : entries) {
    auto it = entries.find({key.second, key.first});
    ASSERT_NE(it, entries.end());
    EXPECT_FLOAT_EQ(w, it->second);
  }
}

TEST(TransformerTest, DepthHeightNormalized) {
  Rng rng(12);
  Tree tree = make_test_tree(7, 2, rng);
  std::vector<float> depth, height;
  tree_depth_height(tree, depth, height);
  EXPECT_FLOAT_EQ(depth[0], 0.0f);          // root depth 0
  EXPECT_GT(height[0], 0.0f);               // root has the max height
  for (std::size_t i = 0; i < depth.size(); ++i) {
    EXPECT_LE(depth[i], 1.0f);
    EXPECT_LE(height[i], 1.0f);
  }
}

TEST(Nets, EmbeddingsAreDeterministic) {
  Rng rng(13);
  TreeConvNet::Config cfg;
  cfg.input_dim = 4;
  cfg.hidden_dim = 6;
  cfg.embed_dim = 3;
  TreeConvNet net(cfg, rng);
  Tree tree = make_test_tree(5, 4, rng);
  Mat a = net.forward(tree);
  Mat b = net.forward(tree);
  for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(a.at(0, j), b.at(0, j));
}

}  // namespace
}  // namespace loam::nn
