// Tests of the project/workload generator and the historical repository +
// flighting substrate.
#include <gtest/gtest.h>

#include <set>

#include "warehouse/flighting.h"
#include "warehouse/native_optimizer.h"
#include "warehouse/repository.h"
#include "warehouse/workload.h"

namespace loam::warehouse {
namespace {

TEST(Workload, ProjectGenerationDeterministic) {
  WorkloadGenerator g1(9), g2(9);
  ProjectArchetype a;
  a.name = "det";
  a.seed = 3;
  Project p1 = g1.make_project(a);
  Project p2 = g2.make_project(a);
  ASSERT_EQ(p1.catalog.table_count(), p2.catalog.table_count());
  for (int i = 0; i < p1.catalog.table_count(); ++i) {
    EXPECT_EQ(p1.catalog.table(i).name, p2.catalog.table(i).name);
    EXPECT_EQ(p1.catalog.table(i).row_count, p2.catalog.table(i).row_count);
  }
  ASSERT_EQ(p1.templates.size(), p2.templates.size());
  for (std::size_t i = 0; i < p1.templates.size(); ++i) {
    EXPECT_EQ(p1.templates[i].tables, p2.templates[i].tables);
  }
}

TEST(Workload, CatalogRespectsArchetypeShape) {
  WorkloadGenerator gen(10);
  ProjectArchetype a;
  a.name = "shape";
  a.n_tables = 40;
  a.temp_table_fraction = 0.3;
  a.stats_coverage = 0.5;
  a.seed = 11;
  Project p = gen.make_project(a);
  EXPECT_GE(p.catalog.table_count(), 30);
  int temps = 0, with_stats = 0, snapshots = 0;
  for (int i = 0; i < p.catalog.table_count(); ++i) {
    const Table& t = p.catalog.table(i);
    temps += t.is_temp;
    snapshots += t.alias_of >= 0;
    with_stats += p.catalog.stats(i).available;
    EXPECT_GE(t.row_count, 100);
    EXPECT_GE(static_cast<int>(t.columns.size()), 3);
    EXPECT_GE(t.num_partitions, 1);
    if (t.is_temp) EXPECT_LT(t.lifespan_days(), 30);
  }
  EXPECT_GT(temps, 0);
  EXPECT_GT(with_stats, 5);
  EXPECT_GT(snapshots, 0);
}

TEST(Workload, PrimaryKeyColumnHasFullNdv) {
  WorkloadGenerator gen(12);
  ProjectArchetype a;
  a.name = "pk";
  a.seed = 13;
  Project p = gen.make_project(a);
  for (int i = 0; i < p.catalog.table_count(); ++i) {
    const Table& t = p.catalog.table(i);
    ASSERT_GT(t.columns.size(), 1u);
    EXPECT_EQ(t.columns[1].ndv, t.row_count);
  }
}

TEST(Workload, TemplatesAreValidQueries) {
  WorkloadGenerator gen(14);
  ProjectArchetype a;
  a.name = "valid";
  a.seed = 15;
  a.n_templates = 30;
  Project p = gen.make_project(a);
  Rng rng(7);
  for (const QueryTemplate& t : p.templates) {
    Query q = gen.instantiate(p, t, 0, rng);
    EXPECT_FALSE(q.tables.empty());
    EXPECT_TRUE(q.joins_connected()) << t.id;
    EXPECT_EQ(q.joins.size(), q.tables.size() - 1);  // spanning tree
    for (const Predicate& pred : q.predicates) {
      EXPECT_GT(pred.selectivity, 0.0);
      EXPECT_LE(pred.selectivity, 1.0);
      EXPECT_GE(q.table_position(pred.table_id), 0);
    }
    // All queries compile through the native optimizer.
    NativeOptimizer opt(p.catalog);
    EXPECT_NO_THROW(opt.optimize(q));
  }
}

TEST(Workload, CanonicalJoinEdgesStableAcrossTemplates) {
  WorkloadGenerator gen(16);
  ProjectArchetype a;
  a.name = "edges";
  a.seed = 17;
  a.n_templates = 60;
  a.n_tables = 10;  // few tables => many repeated pairs
  Project p = gen.make_project(a);
  std::map<std::pair<int, int>, std::pair<int, int>> seen;
  int repeats = 0;
  for (const QueryTemplate& t : p.templates) {
    for (const JoinEdge& e : t.joins) {
      const auto key = std::make_pair(e.left_table, e.right_table);
      const auto cols = std::make_pair(e.left_column, e.right_column);
      auto it = seen.find(key);
      if (it != seen.end()) {
        ++repeats;
        EXPECT_EQ(it->second, cols) << "same table pair must reuse its FK edge";
      } else {
        seen.emplace(key, cols);
      }
    }
  }
  EXPECT_GT(repeats, 0) << "test needs repeated pairs to be meaningful";
}

TEST(Workload, ParameterBindingsVaryAndRecur) {
  WorkloadGenerator gen(18);
  ProjectArchetype a;
  a.name = "params";
  a.seed = 19;
  Project p = gen.make_project(a);
  const QueryTemplate* with_preds = nullptr;
  for (const QueryTemplate& t : p.templates) {
    if (!t.pred_slots.empty()) {
      with_preds = &t;
      break;
    }
  }
  ASSERT_NE(with_preds, nullptr);
  Rng rng(20);
  std::set<std::uint64_t> signatures;
  for (int i = 0; i < 200; ++i) {
    signatures.insert(gen.instantiate(p, *with_preds, 0, rng).param_signature);
  }
  // Parameters vary but quantization makes bindings recur.
  EXPECT_GT(signatures.size(), 2u);
  EXPECT_LT(signatures.size(), 190u);
}

TEST(Workload, DayWorkloadVolumeFollowsGrowth) {
  WorkloadGenerator gen(21);
  ProjectArchetype a;
  a.name = "vol";
  a.seed = 22;
  a.queries_per_day = 100.0;
  a.daily_growth = 1.1;
  Project p = gen.make_project(a);
  Rng rng(23);
  double early = 0.0, late = 0.0;
  for (int d = 0; d < 3; ++d) early += static_cast<double>(gen.day_workload(p, d, rng).size());
  for (int d = 10; d < 13; ++d) late += static_cast<double>(gen.day_workload(p, d, rng).size());
  EXPECT_GT(late, early * 1.5);
}

TEST(Workload, TempTemplatesRespectLifespans) {
  WorkloadGenerator gen(24);
  ProjectArchetype a;
  a.name = "temp";
  a.seed = 25;
  a.temp_table_fraction = 0.5;
  a.temp_template_fraction = 0.5;
  Project p = gen.make_project(a);
  Rng rng(26);
  for (int day = 0; day < 20; ++day) {
    for (const Query& q : gen.day_workload(p, day, rng)) {
      for (int t : q.tables) {
        EXPECT_TRUE(p.catalog.table(t).live_on(day))
            << "query over dropped/not-yet-created table";
      }
    }
  }
}

TEST(Workload, EvaluationArchetypesMatchPaperRoles) {
  const auto v = evaluation_archetypes();
  ASSERT_EQ(v.size(), 5u);
  // P2 and P5 are the high-improvement-space projects: poor statistics.
  EXPECT_LT(v[1].stats_coverage, 0.2);
  EXPECT_LT(v[4].stats_coverage, 0.2);
  // P3 and P4 have near-complete statistics (small improvement space).
  EXPECT_GT(v[2].stats_coverage, 0.9);
  EXPECT_GT(v[3].stats_coverage, 0.9);
  // P4 is the low-volume project.
  for (int i : {0, 1, 2, 4}) {
    EXPECT_GT(v[static_cast<std::size_t>(i)].queries_per_day, v[3].queries_per_day);
  }
  // P3 has the widest schema.
  EXPECT_GT(v[2].n_tables * v[2].avg_columns_per_table,
            v[0].n_tables * v[0].avg_columns_per_table);
}

TEST(Workload, SampledArchetypesAreHeterogeneous) {
  const auto v = sampled_archetypes(30, 77);
  ASSERT_EQ(v.size(), 30u);
  std::set<int> table_counts;
  double min_cov = 1.0, max_cov = 0.0;
  for (const auto& a : v) {
    table_counts.insert(a.n_tables);
    min_cov = std::min(min_cov, a.stats_coverage);
    max_cov = std::max(max_cov, a.stats_coverage);
  }
  EXPECT_GT(table_counts.size(), 15u);
  EXPECT_LT(min_cov, 0.3);
  EXPECT_GT(max_cov, 0.7);
}

TEST(Repository, DayRangeAndDeduplication) {
  QueryRepository repo;
  for (int day = 0; day < 5; ++day) {
    for (int i = 0; i < 3; ++i) {
      QueryRecord r;
      r.day = day;
      r.query.template_id = "q" + std::to_string(i);
      r.query.param_signature = static_cast<std::uint64_t>(i % 2);
      r.exec.cpu_cost = 100.0 * day + i;
      repo.log(std::move(r));
    }
  }
  EXPECT_EQ(repo.size(), 15u);
  EXPECT_EQ(repo.on_day(2).size(), 3u);
  EXPECT_EQ(repo.in_day_range(1, 3).size(), 9u);
  EXPECT_EQ(repo.max_day(), 4);
  // 3 distinct (template, param) pairs.
  EXPECT_EQ(repo.deduplicated(0, 4).size(), 3u);
  // Dedup keeps the earliest run.
  EXPECT_EQ(repo.deduplicated(0, 4)[0]->day, 0);
  EXPECT_EQ(repo.runs_of("q1", 1).size(), 5u);
}

TEST(Flighting, ReplayIsolatedFromServingCluster) {
  WorkloadGenerator gen(30);
  ProjectArchetype a;
  a.name = "flight";
  a.seed = 31;
  Project p = gen.make_project(a);
  NativeOptimizer opt(p.catalog);
  Rng rng(32);
  Query q = gen.instantiate(p, p.templates[0], 0, rng);
  Plan plan = opt.optimize(q);

  FlightingEnv flighting(ClusterConfig{}, ExecutorConfig{}, 33);
  const std::vector<double> costs = flighting.replay(plan, 10);
  ASSERT_EQ(costs.size(), 10u);
  for (double c : costs) EXPECT_GT(c, 0.0);
  // Runs differ (fresh environments) but share the same plan: bounded ratio.
  const double mn = *std::min_element(costs.begin(), costs.end());
  const double mx = *std::max_element(costs.begin(), costs.end());
  EXPECT_GT(mx, mn);
  EXPECT_LT(mx / mn, 10.0);
  EXPECT_NEAR(flighting.replay_mean(plan, 5),
              flighting.replay_mean(plan, 5), flighting.replay_mean(plan, 5));
}

}  // namespace
}  // namespace loam::warehouse
