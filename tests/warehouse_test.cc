// Unit tests of catalog, query and plan primitives.
#include <gtest/gtest.h>

#include "warehouse/catalog.h"
#include "warehouse/flags.h"
#include "warehouse/plan.h"
#include "warehouse/query.h"

namespace loam::warehouse {
namespace {

Table make_table(const std::string& name, long long rows, int cols = 4) {
  Table t;
  t.name = name;
  t.row_count = rows;
  t.num_partitions = 8;
  for (int c = 0; c < cols; ++c) {
    Column col;
    col.name = "c" + std::to_string(c);
    col.ndv = std::max<long long>(1, rows / (c + 1));
    t.columns.push_back(col);
  }
  return t;
}

TEST(CatalogTest, AddAndFind) {
  Catalog cat;
  const int a = cat.add_table(make_table("orders", 1000));
  const int b = cat.add_table(make_table("lineitem", 5000));
  EXPECT_EQ(cat.table_count(), 2);
  EXPECT_EQ(cat.find("orders"), a);
  EXPECT_EQ(cat.find("lineitem"), b);
  EXPECT_EQ(cat.find("nope"), -1);
  EXPECT_EQ(cat.table(a).row_count, 1000);
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog cat;
  cat.add_table(make_table("t", 10));
  EXPECT_THROW(cat.add_table(make_table("t", 20)), std::invalid_argument);
}

TEST(CatalogTest, StatsDefaultUnavailable) {
  Catalog cat;
  const int id = cat.add_table(make_table("t", 500));
  EXPECT_FALSE(cat.stats(id).available);
  EXPECT_EQ(cat.stats(id).observed_rows, 500);
  TableStats s;
  s.available = true;
  s.observed_rows = 480;
  cat.set_stats(id, s);
  EXPECT_TRUE(cat.stats(id).available);
}

TEST(CatalogTest, ColumnIdentifierQualified) {
  Catalog cat;
  const int id = cat.add_table(make_table("orders", 10));
  EXPECT_EQ(cat.column_identifier(id, 2), "orders.c2");
}

TEST(CatalogTest, TableLifespan) {
  Table t = make_table("tmp", 10);
  EXPECT_EQ(t.lifespan_days(), std::numeric_limits<int>::max());
  EXPECT_TRUE(t.live_on(1000));
  t.created_day = 3;
  t.dropped_day = 8;
  EXPECT_EQ(t.lifespan_days(), 5);
  EXPECT_FALSE(t.live_on(2));
  EXPECT_TRUE(t.live_on(3));
  EXPECT_TRUE(t.live_on(7));
  EXPECT_FALSE(t.live_on(8));
}

Query make_three_way_query() {
  Query q;
  q.tables = {10, 11, 12};
  JoinEdge e1;
  e1.left_table = 10;
  e1.right_table = 11;
  e1.left_column = 1;
  e1.right_column = 1;
  JoinEdge e2;
  e2.left_table = 11;
  e2.right_table = 12;
  e2.left_column = 2;
  e2.right_column = 1;
  q.joins = {e1, e2};
  return q;
}

TEST(QueryTest, TablePositionAndConnectivity) {
  Query q = make_three_way_query();
  EXPECT_EQ(q.table_position(11), 1);
  EXPECT_EQ(q.table_position(99), -1);
  EXPECT_TRUE(q.joins_connected());
  q.joins.pop_back();
  EXPECT_FALSE(q.joins_connected());
}

TEST(QueryTest, PredicatesOnFiltersByTable) {
  Query q = make_three_way_query();
  Predicate p1;
  p1.table_id = 10;
  p1.column = 2;
  Predicate p2;
  p2.table_id = 11;
  p2.column = 3;
  q.predicates = {p1, p2};
  EXPECT_EQ(q.predicates_on(10).size(), 1u);
  EXPECT_EQ(q.predicates_on(12).size(), 0u);
}

TEST(QueryTest, ParamSeedDistinguishesBindings) {
  Predicate a;
  a.table_id = 1;
  a.column = 2;
  a.selectivity = 0.1;
  Predicate b = a;
  b.selectivity = 0.2;
  EXPECT_NE(a.param_seed(), b.param_seed());
  EXPECT_EQ(a.param_seed(), a.param_seed());
}

TEST(QueryTest, ToSqlRendersJoinsPredicatesAndGrouping) {
  Catalog cat;
  const int orders = cat.add_table(make_table("orders", 1000));
  const int items = cat.add_table(make_table("items", 5000));
  Query q;
  q.tables = {orders, items};
  JoinEdge e;
  e.left_table = orders;
  e.right_table = items;
  e.left_column = 1;
  e.right_column = 2;
  q.joins = {e};
  Predicate p;
  p.table_id = items;
  p.column = 3;
  p.fns = {FilterFn::kGe, FilterFn::kLt};
  q.predicates = {p};
  Aggregation agg;
  agg.fn = AggFn::kSum;
  agg.table_id = items;
  agg.column = 1;
  agg.group_by = {{orders, 2}};
  q.aggregation = agg;

  const std::string sql = q.to_sql(cat);
  EXPECT_NE(sql.find("SELECT orders.c2, SUM(items.c1)"), std::string::npos);
  EXPECT_NE(sql.find("FROM orders, items"), std::string::npos);
  EXPECT_NE(sql.find("orders.c1 = items.c2"), std::string::npos);
  EXPECT_NE(sql.find("items.c3 >= ?1 AND items.c3 < ?2"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY orders.c2"), std::string::npos);
  EXPECT_EQ(sql.back(), ';');
}

TEST(QueryTest, ToSqlWithoutAggregationSelectsStar) {
  Catalog cat;
  const int t = cat.add_table(make_table("t", 10));
  Query q;
  q.tables = {t};
  const std::string sql = q.to_sql(cat);
  EXPECT_NE(sql.find("SELECT *"), std::string::npos);
  EXPECT_EQ(sql.find("WHERE"), std::string::npos);
  EXPECT_EQ(sql.find("GROUP BY"), std::string::npos);
}

TEST(PlanTest, ThirtyOperatorTypes) {
  EXPECT_EQ(static_cast<int>(OpType::kCount), 30);
  // Every operator renders a proper name.
  for (int i = 0; i < 30; ++i) {
    EXPECT_STRNE(op_name(static_cast<OpType>(i)), "?");
  }
}

TEST(PlanTest, OperatorClassPredicates) {
  EXPECT_TRUE(is_join(OpType::kHashJoin));
  EXPECT_TRUE(is_join(OpType::kBroadcastHashJoin));
  EXPECT_FALSE(is_join(OpType::kHashAggregate));
  EXPECT_TRUE(is_aggregate(OpType::kLocalHashAggregate));
  EXPECT_TRUE(is_exchange(OpType::kBroadcastExchange));
  EXPECT_FALSE(is_exchange(OpType::kSort));
  EXPECT_TRUE(is_filter_like(OpType::kCalc));
}

Plan make_small_plan() {
  // HashJoin(scan(a), scan(b)) under a sink.
  Plan p;
  PlanNode scan_a;
  scan_a.op = OpType::kTableScan;
  scan_a.table_id = 0;
  const int a = p.add_node(scan_a);
  PlanNode scan_b;
  scan_b.op = OpType::kTableScan;
  scan_b.table_id = 1;
  const int b = p.add_node(scan_b);
  PlanNode join;
  join.op = OpType::kHashJoin;
  join.left = a;
  join.right = b;
  const int j = p.add_node(join);
  PlanNode sink;
  sink.op = OpType::kSink;
  sink.left = j;
  p.set_root(p.add_node(sink));
  return p;
}

TEST(PlanTest, PostorderVisitsChildrenFirst) {
  Plan p = make_small_plan();
  const std::vector<int> order = p.postorder();
  ASSERT_EQ(order.size(), 4u);
  // Scans (0,1) before join (2) before sink (3).
  std::vector<int> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[2]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(PlanTest, SignatureDistinguishesStructure) {
  Plan a = make_small_plan();
  Plan b = make_small_plan();
  EXPECT_EQ(a.signature(), b.signature());
  // Swapping scan targets changes the signature.
  b.mutable_node(0).table_id = 1;
  b.mutable_node(1).table_id = 0;
  EXPECT_NE(a.signature(), b.signature());
  // Changing an operator type changes it too.
  Plan c = make_small_plan();
  c.mutable_node(2).op = OpType::kMergeJoin;
  EXPECT_NE(a.signature(), c.signature());
}

TEST(PlanTest, SignatureBucketsEstimatesAndIgnoresTruth) {
  // The semantic signature includes the ESTIMATED cardinalities, but only at
  // log2-bucket granularity: jitter inside a factor-2 band keeps the key,
  // crossing a band changes it.
  Plan a = make_small_plan();
  a.mutable_node(0).est_rows = 1000;
  Plan b = make_small_plan();
  b.mutable_node(0).est_rows = 900;  // same factor-2 band as 1000
  EXPECT_EQ(Plan::est_card_bucket(1000), Plan::est_card_bucket(900));
  EXPECT_EQ(a.signature(), b.signature());
  b.mutable_node(0).est_rows = 12345;  // different bucket
  EXPECT_NE(Plan::est_card_bucket(1000), Plan::est_card_bucket(12345));
  EXPECT_NE(a.signature(), b.signature());

  // Ground truth is executor-only and must NEVER reach a cache key.
  Plan c = make_small_plan();
  c.mutable_node(0).est_rows = 1000;
  c.mutable_node(2).true_rows = 999;
  EXPECT_EQ(a.signature(), c.signature());
}

TEST(PlanTest, SignatureDistinguishesLeafTables) {
  // Plans differing ONLY in one leaf's scan target must hash apart — leaf
  // identity (table, partitions, columns) is part of the semantic key.
  Plan a = make_small_plan();
  Plan b = make_small_plan();
  EXPECT_EQ(a.signature(), b.signature());
  b.mutable_node(1).table_id = 7;
  EXPECT_NE(a.signature(), b.signature());

  Plan c = make_small_plan();
  c.mutable_node(1).partitions_accessed = 3;
  EXPECT_NE(a.signature(), c.signature());

  Plan d = make_small_plan();
  d.mutable_node(1).columns_accessed = 2;
  EXPECT_NE(a.signature(), d.signature());
}

TEST(PlanTest, ParentChildPatterns) {
  Plan p = make_small_plan();
  const auto patterns = p.parent_child_patterns();
  // <HashJoin, TableScan> x2 and <Sink, HashJoin> x1.
  int join_scan = 0, sink_join = 0;
  for (const auto& [pattern, count] : patterns) {
    if (pattern.first == OpType::kHashJoin && pattern.second == OpType::kTableScan) {
      join_scan = count;
    }
    if (pattern.first == OpType::kSink && pattern.second == OpType::kHashJoin) {
      sink_join = count;
    }
  }
  EXPECT_EQ(join_scan, 2);
  EXPECT_EQ(sink_join, 1);
}

TEST(PlanTest, ToStringRendersTree) {
  Plan p = make_small_plan();
  const std::string s = p.to_string();
  EXPECT_NE(s.find("Sink"), std::string::npos);
  EXPECT_NE(s.find("HashJoin"), std::string::npos);
  EXPECT_NE(s.find("TableScan"), std::string::npos);
}

TEST(FlagsTest, DefaultsAndToggle) {
  FlagSet f = FlagSet::defaults();
  EXPECT_TRUE(f.test(Flag::kPreferHashJoin));
  EXPECT_TRUE(f.test(Flag::kEnableBroadcastJoin));
  EXPECT_FALSE(f.test(Flag::kSpoolReuse));
  FlagSet g = f.toggled(Flag::kSpoolReuse);
  EXPECT_TRUE(g.test(Flag::kSpoolReuse));
  EXPECT_FALSE(f.test(Flag::kSpoolReuse));  // original untouched
  EXPECT_NE(f.signature(), g.signature());
}

TEST(FlagsTest, KnobSignatureCoversAllKnobs) {
  PlannerKnobs a, b;
  EXPECT_EQ(a.signature(), b.signature());
  b.card_scale = 2.0;
  EXPECT_NE(a.signature(), b.signature());
  PlannerKnobs c;
  c.force_reorder = true;
  EXPECT_NE(a.signature(), c.signature());
}

TEST(FlagsTest, ToStringListsActiveFlags) {
  PlannerKnobs k;
  k.flags = FlagSet();  // nothing set
  EXPECT_EQ(k.to_string(), "(default)");
  k.flags.set(Flag::kSpoolReuse);
  k.force_reorder = true;
  const std::string s = k.to_string();
  EXPECT_NE(s.find("spool_reuse"), std::string::npos);
  EXPECT_NE(s.find("force_reorder"), std::string::npos);
}

}  // namespace
}  // namespace loam::warehouse
