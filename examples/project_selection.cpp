// Example: the project-selection pipeline of Section 6.
//
// Scans a population of synthetic projects, applies the rule-based Filter
// (R1: daily query volume, R2: volume stability, R3: long-lived tables),
// trains the learned Ranker on a handful of measured projects, and prints the
// ranked deployment shortlist — exactly the workflow that decides where LOAM
// gets deployed among >100,000 production projects.
//
// Run: ./build/examples/project_selection
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/deviance.h"
#include "core/loam.h"
#include "util/table_printer.h"

using namespace loam;

namespace {

// Measures ground-truth improvement space for one project over a few queries
// (the expensive operation Ranker exists to avoid at population scale).
struct MeasuredProject {
  std::string name;
  double improvement = 0.0;
  std::vector<core::RankerExample> examples;
};

MeasuredProject measure(const warehouse::ProjectArchetype& archetype,
                        std::uint64_t seed) {
  MeasuredProject out;
  out.name = archetype.name;
  warehouse::WorkloadGenerator gen(seed);
  warehouse::Project project = gen.make_project(archetype);
  warehouse::NativeOptimizer optimizer(project.catalog);
  core::PlanExplorer explorer(&optimizer);
  core::RankerFeaturizer featurizer;
  Rng rng(seed ^ 0x51ull);
  warehouse::ClusterConfig ccfg;
  ccfg.machines = archetype.cluster_machines;

  double total = 0.0;
  int n = 0;
  for (int i = 0; i < 10; ++i) {
    const auto& tmpl = project.templates[static_cast<std::size_t>(i) %
                                         project.templates.size()];
    const warehouse::Query q = gen.instantiate(project, tmpl, 0, rng);
    const core::CandidateGeneration cand = explorer.explore(q);
    const auto samples = core::paired_replay(cand.plans, ccfg,
                                             warehouse::ExecutorConfig{}, 5,
                                             seed * 7 + static_cast<std::uint64_t>(i));
    const double oracle = core::empirical_oracle_cost(samples);
    if (oracle <= 0.0) continue;
    const double rel =
        core::empirical_expected_deviance(samples, cand.default_index) / oracle;
    total += rel;
    ++n;
    core::RankerExample ex;
    double mean_default = 0.0;
    for (double c : samples[static_cast<std::size_t>(cand.default_index)]) {
      mean_default += c;
    }
    ex.features = featurizer.featurize(
        cand.plans[static_cast<std::size_t>(cand.default_index)], project.catalog,
        mean_default / 5.0);
    ex.improvement_space = rel;
    out.examples.push_back(std::move(ex));
  }
  out.improvement = n > 0 ? total / n : 0.0;
  return out;
}

}  // namespace

int main() {
  // --- Stage 1: rule-based Filter over the population ------------------------
  std::printf("Stage 1: rule-based Filter over 20 projects\n");
  const auto population = warehouse::sampled_archetypes(20, 99);
  std::vector<warehouse::ProjectArchetype> survivors;
  for (const auto& a : population) {
    core::RuntimeConfig rc;
    rc.seed = 1000 + static_cast<std::uint64_t>(&a - population.data());
    core::ProjectRuntime runtime(a, rc);
    runtime.simulate_history(3, 200);
    const core::FilterDecision d =
        core::apply_filter(core::summarize_workload(runtime, 0, 2));
    std::printf("  %-10s n_query=%6.0f/day inc=%.2f stable=%.2f -> %s\n",
                a.name.c_str(), d.n_query, d.inc_ratio, d.stable_ratio,
                d.pass ? "PASS" : "filtered out");
    if (d.pass) survivors.push_back(a);
  }
  std::printf("  %zu/%zu projects pass the Filter\n\n", survivors.size(),
              population.size());
  if (survivors.size() < 4) {
    std::printf("population too small for the demo; done.\n");
    return 0;
  }

  // --- Stage 2: train Ranker on measured projects, rank the rest -------------
  std::printf("Stage 2: measuring %zu survivors (flighting replays)...\n",
              survivors.size());
  std::vector<MeasuredProject> measured;
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    measured.push_back(measure(survivors[i], 5000 + i));
  }
  const std::size_t train_n = measured.size() / 2;
  std::vector<core::RankerExample> pooled;
  for (std::size_t i = 0; i < train_n; ++i) {
    pooled.insert(pooled.end(), measured[i].examples.begin(),
                  measured[i].examples.end());
  }
  core::ProjectRanker ranker;
  ranker.fit(pooled);

  TablePrinter table({"Project", "Ranker score", "true D(Md)/oracle"});
  std::vector<std::size_t> order;
  std::vector<double> scores;
  for (std::size_t i = train_n; i < measured.size(); ++i) {
    double s = 0.0;
    for (const auto& ex : measured[i].examples) s += ranker.estimate(ex.features);
    scores.push_back(s / static_cast<double>(measured[i].examples.size()));
    order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a - train_n] > scores[b - train_n];
  });
  std::printf("\nDeployment shortlist (held-out projects ranked by Ranker):\n");
  for (std::size_t i : order) {
    table.add_row({measured[i].name,
                   TablePrinter::fmt(scores[i - train_n], 3),
                   TablePrinter::fmt_pct(measured[i].improvement)});
  }
  table.print();
  std::printf("\nDeploy LOAM on the top-N rows; the right column shows the true "
              "improvement space the Ranker is estimating.\n");
  return 0;
}
