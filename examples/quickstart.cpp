// Quickstart: the full LOAM lifecycle on one synthetic project.
//
//   1. generate a project and simulate production history (the historical
//      query repository LOAM trains from);
//   2. run the rule-based Filter to confirm the project is trainable;
//   3. train the adaptive cost predictor (TCN + domain-adversarial training);
//   4. steer the native optimizer on a fresh query and compare the chosen
//      plan against the default plan in the flighting environment.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "core/loam.h"

using namespace loam;

int main() {
  // --- 1. A project and 12 days of production history -----------------------
  warehouse::ProjectArchetype archetype = warehouse::evaluation_archetypes()[1];
  archetype.queries_per_day = 120.0;  // keep the demo quick

  core::RuntimeConfig runtime_config;
  runtime_config.seed = 42;
  core::ProjectRuntime runtime(archetype, runtime_config);
  std::printf("project %s: %d tables, simulating history...\n",
              runtime.project().name.c_str(), runtime.catalog().table_count());
  runtime.simulate_history(/*days=*/12, /*max_queries_per_day=*/120);
  std::printf("  repository holds %zu executed queries\n",
              runtime.repository().size());

  // --- 2. Rule-based Filter --------------------------------------------------
  core::WorkloadSummary summary = core::summarize_workload(runtime, 0, 11);
  core::FilterThresholds thresholds = core::FilterThresholds::make_default();
  thresholds.n0 = 50.0;  // demo-scale volume threshold
  thresholds.r = 0.8;
  const core::FilterDecision decision = core::apply_filter(summary, thresholds);
  std::printf("  Filter: n_query=%.0f/day inc_ratio=%.2f stable=%.2f -> %s\n",
              decision.n_query, decision.inc_ratio, decision.stable_ratio,
              decision.pass ? "PASS" : "FAIL");

  // --- 3. Train the adaptive cost predictor ----------------------------------
  core::LoamConfig config;
  config.train_first_day = 0;
  config.train_last_day = 11;
  config.max_train_queries = 800;
  config.candidate_sample_queries = 40;
  config.predictor.epochs = 12;
  core::LoamDeployment loam(&runtime, config);
  loam.train();
  std::printf("  trained %s on %zu default plans (+%zu unexecuted candidates) "
              "in %.1fs; model %.1f KB\n",
              loam.model().name().c_str(), loam.data().default_plans.size(),
              loam.data().candidate_plans.size(), loam.train_seconds(),
              loam.model().model_bytes() / 1024.0);

  // --- 4. Steer a fresh query -------------------------------------------------
  const std::vector<warehouse::Query> tests = runtime.make_queries(12, 12, 5);
  for (const warehouse::Query& q : tests) {
    const core::LoamDeployment::Choice choice = loam.optimize(q);
    std::printf("\nquery %s: %zu candidates (generated in %.0f ms)\n",
                q.template_id.c_str(), choice.generation.plans.size(),
                choice.generation.generation_seconds * 1e3);

    warehouse::FlightingEnv flighting(runtime.config().cluster,
                                      runtime.config().executor, 777);
    const double default_cost = flighting.replay_mean(
        choice.generation.plans[static_cast<std::size_t>(
            choice.generation.default_index)], 5);
    const double chosen_cost = flighting.replay_mean(
        choice.generation.plans[static_cast<std::size_t>(choice.chosen)], 5);
    std::printf("  default plan cost %.0f | LOAM-chosen plan (%s) cost %.0f "
                "(%+.1f%%)\n",
                default_cost,
                choice.generation.knobs[static_cast<std::size_t>(choice.chosen)]
                    .to_string().c_str(),
                chosen_cost, 100.0 * (chosen_cost - default_cost) / default_cost);
  }
  return 0;
}
