// Example: environment-driven cost variation of a recurring query, and why a
// cost model must be environment-aware (Challenges C1 and Section 5).
//
// Takes one recurring production query, executes it across a day of shifting
// cluster load, and shows:
//   * the raw cost spread (the Fig. 1 phenomenon),
//   * how the observed cost tracks the load metrics of the machines the
//     stages actually ran on (the Fig. 5 relationship),
//   * the log-normal fit behind the deviance analytics (Fig. 15).
//
// Run: ./build/examples/recurring_workload
#include <algorithm>
#include <cstdio>

#include "core/deviance.h"
#include "core/explorer.h"
#include "util/table_printer.h"
#include "warehouse/flighting.h"
#include "warehouse/native_optimizer.h"
#include "warehouse/workload.h"

using namespace loam;

int main() {
  warehouse::WorkloadGenerator gen(321);
  warehouse::Project project =
      gen.make_project(warehouse::evaluation_archetypes()[0]);
  warehouse::NativeOptimizer optimizer(project.catalog);
  Rng rng(5);
  const warehouse::Query query =
      gen.instantiate(project, project.templates[0], 0, rng);
  warehouse::Plan plan = optimizer.optimize(query);
  std::printf("recurring query %s, default plan:\n%s\n", query.template_id.c_str(),
              plan.to_string().c_str());

  // A day of executions under drifting load.
  warehouse::ClusterConfig ccfg;
  ccfg.machines = 64;
  ccfg.diurnal_amplitude = 0.25;
  warehouse::Cluster cluster(ccfg, 17);
  warehouse::Executor executor(&cluster);
  std::vector<double> costs, idles;
  for (int run = 0; run < 120; ++run) {
    cluster.advance(720.0);  // 12 minutes between submissions
    warehouse::Plan copy = plan;
    const warehouse::ExecutionResult r = executor.execute(copy, rng);
    costs.push_back(r.cpu_cost);
    idles.push_back(r.plan_avg_env.cpu_idle);
  }

  std::printf("cost spread over one simulated day (%zu runs):\n", costs.size());
  TablePrinter spread({"metric", "value"});
  spread.add_row({"mean cost", TablePrinter::fmt_int(static_cast<long long>(mean(costs)))});
  spread.add_row({"relative stddev", TablePrinter::fmt_pct(relative_stddev(costs))});
  spread.add_row({"min / max", TablePrinter::fmt_int(static_cast<long long>(
                                   *std::min_element(costs.begin(), costs.end()))) +
                                   " / " +
                                   TablePrinter::fmt_int(static_cast<long long>(
                                       *std::max_element(costs.begin(), costs.end())))});
  spread.add_row({"corr(cost, CPU_IDLE)",
                  TablePrinter::fmt(pearson_correlation(costs, idles), 2)});
  spread.print();

  // Log-normal fit and KS test (Appendix E.1).
  const LogNormal fit = fit_lognormal_mle(costs);
  const KsResult ks = ks_test_lognormal(costs, fit);
  std::printf("\nlog-normal fit: mu=%.2f sigma=%.3f | KS p-value %.2f | Q-Q "
              "correlation %.3f\n",
              fit.mu, fit.sigma, ks.p_value, qq_correlation(costs, fit));

  // What this means for plan selection: intrinsic deviance of the
  // best-achievable model across this query's candidate plans.
  core::PlanExplorer explorer(&optimizer);
  const core::CandidateGeneration cand = explorer.explore(query);
  warehouse::FlightingEnv flighting(ccfg, warehouse::ExecutorConfig{}, 23);
  std::vector<std::vector<double>> samples;
  for (const warehouse::Plan& p : cand.plans) samples.push_back(flighting.replay(p, 40));
  const std::vector<LogNormal> dists = core::fit_cost_distributions(samples);
  const int mb = core::best_achievable_index(dists);
  const double oracle = core::expected_min_cost(dists);
  const double dev = core::expected_deviance(dists, mb);
  std::printf("\n%zu candidate plans; best-achievable selection (M_b) has "
              "expected deviance %.0f = %.1f%% of the oracle cost %.0f —\n"
              "the intrinsic gap of Theorem 1 that no cost model can close.\n",
              cand.plans.size(), dev, 100.0 * dev / oracle, oracle);
  return 0;
}
