// Example: offline analytics over an exported repository cost log — the
// downstream-consumer side of Section 2.1's logging step.
//
// Simulates a project's production history, exports the repository as a
// portable cost log, re-imports it, and runs the analyses the log exists
// for: recurring-query variance (Fig. 1), per-template cost profiles, and
// environment-vs-cost correlation (Fig. 5), all without touching plan trees.
//
// Run: ./build/examples/cost_log_analysis
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>

#include "core/loam.h"
#include "util/table_printer.h"
#include "warehouse/repository_io.h"

using namespace loam;

int main() {
  // --- produce and export a history --------------------------------------
  warehouse::ProjectArchetype archetype = warehouse::evaluation_archetypes()[0];
  archetype.queries_per_day = 150.0;
  core::RuntimeConfig rc;
  rc.seed = 2024;
  core::ProjectRuntime runtime(archetype, rc);
  runtime.simulate_history(/*days=*/10, /*max_queries_per_day=*/150);

  const std::string path =
      (std::filesystem::temp_directory_path() / "loam_cost_log.tsv").string();
  warehouse::write_cost_log_file(warehouse::to_cost_log(runtime.repository()),
                                 path);
  std::printf("exported %zu rows to %s\n", runtime.repository().size(),
              path.c_str());

  // --- re-import and analyze ----------------------------------------------
  const std::vector<warehouse::CostLogRow> rows =
      warehouse::read_cost_log_file(path);
  std::printf("re-imported %zu rows\n\n", rows.size());

  // Per-template profile.
  struct Profile {
    std::vector<double> costs;
    std::vector<double> idles;
  };
  std::map<std::string, Profile> templates;
  for (const auto& r : rows) {
    templates[r.template_id].costs.push_back(r.cpu_cost);
    templates[r.template_id].idles.push_back(r.env.cpu_idle);
  }

  TablePrinter table({"template", "runs", "mean cost", "RSD",
                      "corr(cost, CPU_IDLE)"});
  std::vector<std::pair<std::string, const Profile*>> heavy;
  for (const auto& [id, p] : templates) heavy.emplace_back(id, &p);
  std::sort(heavy.begin(), heavy.end(), [](const auto& a, const auto& b) {
    return a.second->costs.size() > b.second->costs.size();
  });
  for (std::size_t i = 0; i < std::min<std::size_t>(8, heavy.size()); ++i) {
    const Profile& p = *heavy[i].second;
    table.add_row({heavy[i].first,
                   TablePrinter::fmt_int(static_cast<long long>(p.costs.size())),
                   TablePrinter::fmt_int(static_cast<long long>(mean(p.costs))),
                   TablePrinter::fmt_pct(relative_stddev(p.costs)),
                   TablePrinter::fmt(pearson_correlation(p.costs, p.idles), 2)});
  }
  table.print();

  // Recurring-query variance (fixed parameters, same as Fig. 1).
  std::map<std::pair<std::string, std::uint64_t>, std::vector<double>> recurring;
  for (const auto& r : rows) {
    recurring[{r.template_id, r.param_signature}].push_back(r.cpu_cost);
  }
  std::vector<double> rsds;
  for (const auto& [key, costs] : recurring) {
    if (costs.size() >= 5) rsds.push_back(relative_stddev(costs));
  }
  if (!rsds.empty()) {
    std::printf("\nrecurring queries with >=5 runs: %zu | median RSD %s | max "
                "RSD %s\n",
                rsds.size(),
                TablePrinter::fmt_pct(percentile(rsds, 50)).c_str(),
                TablePrinter::fmt_pct(percentile(rsds, 100)).c_str());
  }
  std::printf("\n(the negative cost/CPU_IDLE correlations are the Fig. 5 "
              "relationship recovered purely from the log)\n");
  std::remove(path.c_str());
  return 0;
}
