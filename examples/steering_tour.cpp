// Example: a tour of the steering surface — what each expert knob does to a
// physical plan and what it costs (Section 3's plan explorer, from the
// engine's point of view).
//
// Run: ./build/examples/steering_tour
#include <cstdio>

#include "core/explorer.h"
#include "util/table_printer.h"
#include "warehouse/flighting.h"
#include "warehouse/workload.h"

using namespace loam;

int main() {
  warehouse::WorkloadGenerator gen(777);
  warehouse::Project project =
      gen.make_project(warehouse::evaluation_archetypes()[1]);
  warehouse::NativeOptimizer optimizer(project.catalog);
  Rng rng(8);

  // Find a join-heavy template for an interesting tour.
  const warehouse::QueryTemplate* tmpl = &project.templates[0];
  for (const auto& t : project.templates) {
    if (t.tables.size() >= 4) {
      tmpl = &t;
      break;
    }
  }
  const warehouse::Query query = gen.instantiate(project, *tmpl, 0, rng);
  std::printf("query %s joins %zu tables:\n%s\n\n", query.template_id.c_str(),
              query.tables.size(), query.to_sql(project.catalog).c_str());

  // The default plan.
  warehouse::Plan default_plan = optimizer.optimize(query);
  std::printf("default plan (flags: %s):\n%s\n",
              warehouse::PlannerKnobs().to_string().c_str(),
              default_plan.to_string().c_str());

  // Walk the individual knobs.
  warehouse::FlightingEnv flighting(warehouse::ClusterConfig{},
                                    warehouse::ExecutorConfig{}, 31);
  const double default_cost = flighting.replay_mean(default_plan, 8);

  TablePrinter table({"knob setting", "plan changed?", "mean CPU cost",
                      "vs default"});
  table.add_row({"(default)", "-",
                 TablePrinter::fmt_int(static_cast<long long>(default_cost)),
                 "-"});

  auto tour = [&](const warehouse::PlannerKnobs& knobs) {
    warehouse::Plan plan = optimizer.optimize(query, knobs);
    const bool changed = plan.signature() != default_plan.signature();
    const double cost = changed ? flighting.replay_mean(plan, 8) : default_cost;
    table.add_row({knobs.to_string(), changed ? "yes" : "no",
                   TablePrinter::fmt_int(static_cast<long long>(cost)),
                   TablePrinter::fmt_pct((cost - default_cost) / default_cost)});
  };

  for (int f = 0; f < static_cast<int>(warehouse::Flag::kCount); ++f) {
    warehouse::PlannerKnobs k;
    k.flags = k.flags.toggled(static_cast<warehouse::Flag>(f));
    tour(k);
  }
  {
    warehouse::PlannerKnobs k;
    k.force_reorder = true;
    tour(k);
  }
  for (double s : {0.3, 3.0}) {
    warehouse::PlannerKnobs k;
    k.card_scale = s;
    k.force_reorder = true;
    tour(k);
  }
  table.print();

  // And what the curated explorer actually offers.
  core::PlanExplorer explorer(&optimizer);
  const core::CandidateGeneration cand = explorer.explore(query);
  std::printf("\nexplorer kept %zu candidates out of %d trials (generated in "
              "%.1f ms); knobs:\n",
              cand.plans.size(), cand.trials, cand.generation_seconds * 1e3);
  for (std::size_t i = 0; i < cand.knobs.size(); ++i) {
    std::printf("  [%zu]%s %s\n", i,
                static_cast<int>(i) == cand.default_index ? " (default)" : "",
                cand.knobs[i].to_string().c_str());
  }
  return 0;
}
