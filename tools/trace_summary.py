#!/usr/bin/env python3
"""Summarize a Chrome trace_event JSON produced by loam's obs layer.

Reads the top-level array of complete ("ph":"X") events that loam_sim_cli
--trace-out (or obs::Tracer::to_chrome_json) writes, and prints the top-N
span names by total and by self time. Self time subtracts the time covered
by same-thread spans strictly nested inside an event, so a parent that only
waits on instrumented children shows up near zero.

Serve spans carry a shard tag (args.shard, -1/absent = untagged); when any
are present a per-shard utilization table follows: events, total span time,
and each shard's busy fraction of the tagged wall window — an imbalance or
an idle shard is visible at a glance.

Usage: tools/trace_summary.py TRACE.json [--top N]
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    with open(path) as f:
        data = json.load(f)
    if isinstance(data, dict):  # tolerate the {"traceEvents": [...]} wrapper
        data = data.get("traceEvents", [])
    if not isinstance(data, list):
        raise SystemExit(f"{path}: expected a trace_event array")
    events = []
    for e in data:
        if not isinstance(e, dict) or e.get("ph") != "X":
            continue
        event_args = e.get("args", {})
        events.append(
            {
                "name": e.get("name", "?"),
                "cat": e.get("cat", "?"),
                "tid": e.get("tid", 0),
                "ts": float(e.get("ts", 0.0)),
                "dur": float(e.get("dur", 0.0)),
                "shard": int(event_args.get("shard", -1))
                if isinstance(event_args, dict)
                else -1,
            }
        )
    return events


def self_times(events):
    """Per-event self time: duration minus time covered by nested same-thread
    spans. Events are complete spans, so containment is by time interval."""
    by_tid = defaultdict(list)
    for e in events:
        by_tid[e["tid"]].append(e)
    selfs = {}
    for tid_events in by_tid.values():
        # Parents first: earlier start, then longer duration.
        tid_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # enclosing spans, innermost last
        for e in tid_events:
            end = e["ts"] + e["dur"]
            while stack and stack[-1]["end"] <= e["ts"]:
                stack.pop()
            if stack and end <= stack[-1]["end"]:
                # Direct parent loses this child's whole duration.
                stack[-1]["child_time"] += e["dur"]
            entry = {"event": id(e), "end": end, "child_time": 0.0}
            selfs[id(e)] = entry
            stack.append(entry)
    return {k: v for k, v in selfs.items()}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--top", type=int, default=15, metavar="N",
                        help="rows to print per table (default 15)")
    args = parser.parse_args()

    events = load_events(args.trace)
    if not events:
        print(f"{args.trace}: no complete events")
        return

    selfs = self_times(events)
    total = defaultdict(lambda: [0, 0.0, 0.0])  # name -> [count, total, self]
    for e in events:
        row = total[f"{e['cat']}:{e['name']}"]
        row[0] += 1
        row[1] += e["dur"]
        entry = selfs[id(e)]
        row[2] += max(0.0, e["dur"] - entry["child_time"])

    span_us = sum(r[1] for r in total.values())
    print(f"{len(events)} events, {len(total)} distinct spans, "
          f"{span_us / 1e6:.3f} s total span time\n")

    def table(title, key_index):
        print(title)
        print(f"  {'span':<40} {'count':>8} {'total ms':>10} {'self ms':>10}")
        ranked = sorted(total.items(), key=lambda kv: -kv[1][key_index])
        for name, (count, tot, self_t) in ranked[: args.top]:
            print(f"  {name:<40} {count:>8} {tot / 1e3:>10.2f} {self_t / 1e3:>10.2f}")
        print()

    table("top spans by TOTAL time:", 1)
    table("top spans by SELF time:", 2)
    shard_table(events)


def shard_table(events):
    """Per-shard utilization over shard-tagged spans (serve batch/shed)."""
    tagged = [e for e in events if e["shard"] >= 0]
    if not tagged:
        return
    window_us = max(e["ts"] + e["dur"] for e in tagged) - min(
        e["ts"] for e in tagged
    )
    shards = defaultdict(lambda: [0, 0.0])  # shard -> [events, total us]
    for e in tagged:
        row = shards[e["shard"]]
        row[0] += 1
        row[1] += e["dur"]
    print("per-shard utilization (shard-tagged spans):")
    print(f"  {'shard':>5} {'events':>8} {'total ms':>10} {'busy %':>8}")
    for shard in sorted(shards):
        count, tot = shards[shard]
        busy = 100.0 * tot / window_us if window_us > 0 else 0.0
        print(f"  {shard:>5} {count:>8} {tot / 1e3:>10.2f} {busy:>8.1f}")
    print()


if __name__ == "__main__":
    sys.exit(main())
