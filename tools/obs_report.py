#!/usr/bin/env python3
"""Render or validate loam flight-recorder dump bundles.

A dump bundle (schema "loam.flight.v1") is one JSON object written by
obs::FlightRecorder::trigger_dump(): metric-history rings, the SLO alert
log, a trace drain, registered state-provider tables, and a full registry
snapshot. See docs/OBSERVABILITY.md for the schema.

Usage:
  tools/obs_report.py DUMP.json                 # render summary report
  tools/obs_report.py DUMP.json --series SUBSTR # only matching series
  tools/obs_report.py DUMP.json --quantile 0.5  # histogram quantile to plot
  tools/obs_report.py --validate DUMP.json      # schema check, exit 0/1

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys

SPARK_CHARS = "▁▂▃▄▅▆▇█"  # ▁..█


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def _fail(msg):
    print("obs_report: INVALID: %s" % msg, file=sys.stderr)
    return 1


def validate(bundle):
    """Structural schema check for a loam.flight.v1 bundle. Returns exit code."""
    if not isinstance(bundle, dict):
        return _fail("top level is not an object")
    if bundle.get("schema") != "loam.flight.v1":
        return _fail("schema is %r, expected 'loam.flight.v1'" % bundle.get("schema"))
    if not isinstance(bundle.get("reason"), str) or not bundle["reason"]:
        return _fail("missing or empty 'reason'")
    for key in ("t_ns", "interval_ns", "ring_capacity"):
        if not isinstance(bundle.get(key), (int, float)):
            return _fail("missing numeric %r" % key)
    rec = bundle.get("recorder")
    if not isinstance(rec, dict) or not all(
            isinstance(rec.get(k), (int, float)) for k in ("samples", "overwrites")):
        return _fail("'recorder' must hold numeric samples/overwrites")

    history = bundle.get("history")
    if not isinstance(history, list):
        return _fail("'history' is not a list")
    for i, series in enumerate(history):
        where = "history[%d]" % i
        if not isinstance(series, dict):
            return _fail("%s is not an object" % where)
        name = series.get("name")
        if not isinstance(name, str) or not name:
            return _fail("%s missing 'name'" % where)
        where = "history[%r]" % name
        kind = series.get("kind")
        if kind not in ("counter", "gauge", "histogram"):
            return _fail("%s has unknown kind %r" % (where, kind))
        samples = series.get("samples")
        if not isinstance(samples, list):
            return _fail("%s 'samples' is not a list" % where)
        prev_t = None
        for s in samples:
            if not isinstance(s, dict):
                return _fail("%s has a non-object sample" % where)
            for k in ("t_ns", "value", "delta"):
                if not isinstance(s.get(k), (int, float)):
                    return _fail("%s sample missing numeric %r" % (where, k))
            if prev_t is not None and s["t_ns"] < prev_t:
                return _fail("%s samples not time-ordered" % where)
            prev_t = s["t_ns"]
            if kind == "histogram":
                if not isinstance(s.get("buckets"), list):
                    return _fail("%s histogram sample missing 'buckets'" % where)
        if kind == "histogram":
            bounds = series.get("bounds")
            if not isinstance(bounds, list):
                return _fail("%s histogram missing 'bounds'" % where)
            for s in samples:
                if len(s["buckets"]) != len(bounds) + 1:
                    return _fail("%s bucket/bound arity mismatch" % where)

    alerts = bundle.get("alerts")
    if not isinstance(alerts, dict) or not isinstance(alerts.get("log"), list) \
            or not isinstance(alerts.get("active"), list):
        return _fail("'alerts' must hold 'log' and 'active' lists")
    for a in alerts["log"]:
        for k in ("rule", "metric"):
            if not isinstance(a.get(k), str):
                return _fail("alert log entry missing %r" % k)
        for k in ("fired_t_ns", "value", "threshold"):
            if not isinstance(a.get(k), (int, float)):
                return _fail("alert log entry missing numeric %r" % k)

    registry = bundle.get("registry")
    if not isinstance(registry, dict) or not isinstance(registry.get("metrics"), list):
        return _fail("'registry' must hold a 'metrics' list")
    if not isinstance(bundle.get("trace"), list):
        return _fail("'trace' is not a list")
    if not isinstance(bundle.get("state"), dict):
        return _fail("'state' is not an object")
    return 0


# ---------------------------------------------------------------------------
# Rendering helpers
# ---------------------------------------------------------------------------

def histogram_quantile(bounds, buckets, q):
    """Interpolated quantile; mirrors loam::obs::histogram_quantile."""
    total = sum(buckets)
    if total <= 0:
        return 0.0
    rank = min(max(q, 0.0), 1.0) * total
    cum = 0.0
    for b, count in enumerate(buckets):
        if count <= 0:
            continue
        prev = cum
        cum += count
        if cum >= rank:
            if b == len(bounds):  # overflow bucket: clamp to the last bound
                return bounds[-1] if bounds else 0.0
            lo = 0.0 if b == 0 else bounds[b - 1]
            hi = bounds[b]
            frac = min(max((rank - prev) / count, 0.0), 1.0)
            return lo + frac * (hi - lo)
    return bounds[-1] if bounds else 0.0


def sparkline(values):
    finite = [v for v in values if v is not None]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in values:
        if v is None:
            out.append(" ")
        elif span <= 0:
            out.append(SPARK_CHARS[0])
        else:
            idx = int((v - lo) / span * (len(SPARK_CHARS) - 1))
            out.append(SPARK_CHARS[min(max(idx, 0), len(SPARK_CHARS) - 1)])
    return "".join(out)


def fmt(v):
    if v is None:
        return "-"
    if v == 0:
        return "0"
    a = abs(v)
    if a >= 1e5 or a < 1e-3:
        return "%.3g" % v
    if float(v).is_integer() and a < 1e5:
        return "%d" % int(v)
    return "%.4g" % v


def print_table(headers, rows):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        print("| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |")
    line(headers)
    line(["-" * w for w in widths])
    for row in rows:
        line(row)


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------

def series_values(series, q):
    """Per-tick plot values: counter rate / gauge value / histogram quantile."""
    kind = series["kind"]
    bounds = series.get("bounds", [])
    out = []
    for s in series["samples"]:
        if kind == "histogram":
            buckets = s.get("buckets", [])
            out.append(histogram_quantile(bounds, buckets, q) if sum(buckets) > 0
                       else None)
        else:
            out.append(s["value"])
    return out


def render(bundle, series_filter, q, max_width):
    t0 = min((s["samples"][0]["t_ns"] for s in bundle["history"] if s["samples"]),
             default=bundle["t_ns"])

    print("flight dump: reason=%s  schema=%s" % (bundle["reason"], bundle["schema"]))
    print("recorder: %d samples, %d overwrites, interval %.1f ms, ring %d" % (
        bundle["recorder"]["samples"], bundle["recorder"]["overwrites"],
        bundle["interval_ns"] / 1e6, bundle["ring_capacity"]))
    print("captured at t=%.1f ms (relative to first sample); %d trace events; "
          "state tables: %s" % ((bundle["t_ns"] - t0) / 1e6, len(bundle["trace"]),
                                ", ".join(sorted(bundle["state"])) or "none"))
    print()

    log = sorted(bundle["alerts"]["log"], key=lambda a: a["fired_t_ns"])
    print("alert timeline (%d fired, %d active):" % (
        len(log), len(bundle["alerts"]["active"])))
    if log:
        rows = []
        for a in log:
            cleared = a.get("cleared_t_ns", -1)
            rows.append([
                a["rule"], a["metric"],
                "%.1f" % ((a["fired_t_ns"] - t0) / 1e6),
                "active" if cleared is None or cleared < 0
                else "%.1f" % ((cleared - t0) / 1e6),
                fmt(a["value"]), fmt(a["threshold"]),
            ])
        print_table(["rule", "metric", "fired (ms)", "cleared (ms)",
                     "value", "threshold"], rows)
    else:
        print("  (no SLO rule fired)")
    print()

    history = [s for s in bundle["history"]
               if not series_filter or series_filter in s["name"]]
    label = {"counter": "rate/s", "gauge": "value",
             "histogram": "p%g" % (100 * q)}
    print("metric history (%d series%s; histogram column is per-tick %s):" % (
        len(history),
        " matching %r" % series_filter if series_filter else "",
        label["histogram"]))
    rows = []
    for series in history:
        values = series_values(series, q)
        finite = [v for v in values if v is not None]
        tail = values[-max_width:]
        rows.append([
            series["name"], series["kind"], str(series.get("total_samples", len(values))),
            fmt(finite[-1] if finite else None),
            fmt(min(finite) if finite else None),
            fmt(max(finite) if finite else None),
            sparkline(tail),
        ])
    print_table(["series", "kind", "n", "last", "min", "max", "history"], rows)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dump", help="flight dump bundle (JSON)")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check only; exit 0 if well-formed")
    parser.add_argument("--series", default="",
                        help="only render series whose name contains this substring")
    parser.add_argument("--quantile", type=float, default=0.99,
                        help="histogram quantile to plot (default 0.99)")
    parser.add_argument("--width", type=int, default=64,
                        help="max sparkline width in ticks (default 64)")
    args = parser.parse_args()

    try:
        with open(args.dump, "r", encoding="utf-8") as f:
            bundle = json.load(f)
    except (OSError, ValueError) as e:
        return _fail("cannot load %s: %s" % (args.dump, e))

    code = validate(bundle)
    if args.validate:
        if code == 0:
            print("obs_report: %s is a well-formed loam.flight.v1 bundle" % args.dump)
        return code
    if code != 0:
        return code
    render(bundle, args.series, args.quantile, max(args.width, 4))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
