#!/usr/bin/env bash
# CI-style verification: build and test the tree twice —
#   1. Release (the tier-1 configuration), full ctest suite;
#   2. ThreadSanitizer (-DLOAM_SANITIZE=thread), full ctest suite.
# The TSan pass is what certifies the parallel explorer and the thread pool
# free of data races; the determinism property tests (explorer_parallel_test)
# run under both configurations.
#
# Usage: tools/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== Release build + tests =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "${JOBS}"
ctest --test-dir build-release --output-on-failure -j "${JOBS}"

echo "== Dense-math core perf smoke (BENCH_nn_core.json) =="
# Blocked GEMM vs in-binary naive replicas + serial-vs-parallel training;
# exits non-zero if parallel training is not bit-identical to serial.
./build-release/bench/bench_micro --nn-core-only \
  --nn-core-json=build-release/BENCH_nn_core.json
test -s build-release/BENCH_nn_core.json

echo "== ThreadSanitizer build + tests =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLOAM_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}"

echo "== check.sh: all configurations green =="
