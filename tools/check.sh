#!/usr/bin/env bash
# CI-style verification: build and test the tree three times —
#   1. Release (the tier-1 configuration), full ctest suite, plus a
#      forced-scalar leg (LOAM_SIMD=off) re-running the dense-math and
#      serving suites with the SIMD dispatch pinned to the scalar arm;
#   2. ThreadSanitizer (-DLOAM_SANITIZE=thread), ctest minus `slow` label;
#   3. ASan+UBSan (-DLOAM_SANITIZE=address+undefined), ctest minus `slow`,
#      plus a per-arm alignment pass cycling LOAM_SIMD over
#      portable/avx2/avx512 for the kernel and quantization suites.
# The `slow` label marks the drift scenario suites (whole simulated days per
# test); Release runs them, the 10-20x sanitizer passes skip them — their
# concurrency surface (journal/registry/cache) is already covered by the
# serve suites that do run under both sanitizers.
# The TSan pass is what certifies the parallel explorer, the thread pool, the
# obs tracing rings, and the loam::serve hot-swap path free of data races; the
# ASan+UBSan pass catches lifetime and UB bugs in the journal/registry binary
# IO. The determinism property tests run under every configuration.
#
# Between the builds, Release smoke steps run:
#   - dense-math core perf (BENCH_nn_core.json, fails on non-bit-identity
#     or a blocked-GEMM speedup below 4x when a vector arm is dispatched);
#   - obs overhead (BENCH_obs.json, fails if disabled sites cost > 50 ns);
#   - CLI observability export (--metrics-out/--trace-out JSON validated with
#     python3 -m json.tool, trace summarized by tools/trace_summary.py);
#   - CLI flag hygiene (an unknown flag must fail with usage, not be ignored);
#   - serving soak (loam_sim_cli serve) and serving latency/swap-pause bench
#     (BENCH_serve.json, fails if a swap ever pauses requests > 1 ms; also
#     records the paired fp32-vs-int8 quantized serving leg);
#   - memoized-inference bench (BENCH_cache.json, fails on any cached-vs-
#     uncached or parallel-vs-serial divergence, or if the warm selection
#     speedup falls below 1.5x);
#   - overload/pacing bench (BENCH_pacing.json, fails if any request is
#     rejected at any load, or if p99 under 10x offered load exceeds 2x the
#     1x baseline — the BBR-style shed-to-fallback claim);
#   - multi-shard serving soak (loam_sim_cli serve --shards=4; per-shard
#     journal files must appear);
#   - shard scale-out bench (BENCH_serve_scaling.json, fails if any request
#     is rejected, any shard's applied-swap pause exceeds 1 ms, or — on a
#     machine with >= 4 hardware threads — 4-shard model-path throughput
#     falls below 2.5x 1-shard);
#   - workload-drift smoke (loam_sim_cli drift: a scripted schema migration +
#     flash crowd replayed under the flight recorder, dump validated by
#     obs_report.py; a script with an unknown key must be rejected);
#   - drift recovery bench (BENCH_drift.json, fails unless the modular
#     learner's time-to-recover beats the monolithic baseline on BOTH
#     localized-drift scenarios with the control project never rolled back).
# The pacing filter/state-machine tests (pacing_filter_test,
# pacing_controller_test), the serve overload soak, and the shard suite
# (shard_test: cross-shard hot-swap soak, rollback-while-sharded,
# fixed-shard-count bit-identity) run in every ctest pass above — the TSan
# pass is the 4-shard concurrency soak.
#
# Usage: tools/check.sh [jobs]
# Environment:
#   CHECK_JOBS       parallelism when no [jobs] argument is given
#                    (default: nproc)
#   BUILD_DIR        Release build directory (default: build-release)
#   TSAN_BUILD_DIR   TSan build directory   (default: build-tsan)
#   ASAN_BUILD_DIR   ASan+UBSan build directory (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-${CHECK_JOBS:-$(nproc)}}"
BUILD_DIR="${BUILD_DIR:-build-release}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-build-asan}"

echo "== Release build + tests =="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== Forced-scalar leg (LOAM_SIMD=off) =="
# Re-run the dense-math, predictor, and serving suites with the SIMD
# dispatch pinned to the scalar arm: the fp32 results must be bit-identical
# to the vector arms (the single-fmaf-chain contract), so every suite that
# passed above must pass unchanged here.
LOAM_SIMD=off ctest --test-dir "${BUILD_DIR}" --output-on-failure \
  -j "${JOBS}" -R "Simd|Mat|Nn|Quant|Predictor|Serve|Service|Shard|Pacing"

echo "== Dense-math core perf smoke (BENCH_nn_core.json) =="
# Dispatched SIMD GEMM vs in-binary blocked + naive replicas and
# serial-vs-parallel training; the binary exits non-zero if parallel
# training is not bit-identical to serial, or if a vector arm (avx2/avx512)
# is dispatched and the best blocked-GEMM speedup falls below 4x (the gate
# self-skips with a notice on hosts without AVX2). The JSON is re-checked
# here so a stale file can never green-wash a failure.
"./${BUILD_DIR}/bench/bench_micro" --nn-core-only \
  --nn-core-json="${BUILD_DIR}/BENCH_nn_core.json"
python3 - "${BUILD_DIR}/BENCH_nn_core.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["simd_arch"] in {"scalar", "scalar+fma", "avx2", "avx512"}, doc
gate = doc["gemm_gate"]
if gate["binding"]:
    assert gate["best_speedup_vs_blocked"] >= 4.0, gate
else:
    print("NOTICE: 4x GEMM gate not binding (arm %s)" % doc["simd_arch"])
EOF

echo "== Observability overhead smoke (BENCH_obs.json) =="
# Disabled sites must stay in the nanoseconds (the one-branch contract).
"./${BUILD_DIR}/bench/bench_micro" --obs-overhead \
  --obs-json="${BUILD_DIR}/BENCH_obs.json"
python3 -m json.tool "${BUILD_DIR}/BENCH_obs.json" > /dev/null

echo "== Observability export smoke (loam_sim_cli --metrics-out/--trace-out) =="
# train exits 2 when the deployment gate rejects the model; for this smoke
# both 0 and 2 mean the pipeline ran end to end.
rc=0
"./${BUILD_DIR}/tools/loam_sim_cli" train 1 4 \
  --metrics-out="${BUILD_DIR}/obs_metrics.json" \
  --trace-out="${BUILD_DIR}/obs_trace.json" || rc=$?
if [[ "${rc}" != 0 && "${rc}" != 2 ]]; then
  echo "loam_sim_cli train failed with ${rc}" >&2
  exit "${rc}"
fi
python3 -m json.tool "${BUILD_DIR}/obs_metrics.json" > /dev/null
python3 -m json.tool "${BUILD_DIR}/obs_trace.json" > /dev/null
python3 tools/trace_summary.py "${BUILD_DIR}/obs_trace.json" --top 10

echo "== CLI flag hygiene smoke (unknown flag must be rejected) =="
rc=0
"./${BUILD_DIR}/tools/loam_sim_cli" inspect 1 --definitely-not-a-flag \
  > /dev/null 2>&1 || rc=$?
if [[ "${rc}" == 0 ]]; then
  echo "loam_sim_cli accepted an unknown flag (expected non-zero exit)" >&2
  exit 1
fi

echo "== Serving soak smoke (loam_sim_cli serve) =="
rm -rf "${BUILD_DIR}/serve_state"
"./${BUILD_DIR}/tools/loam_sim_cli" serve 1 48 "${BUILD_DIR}/serve_state"
test -s "${BUILD_DIR}/serve_state/feedback.jnl"

echo "== Serving latency/hot-swap bench (BENCH_serve.json) =="
# Submits a request stream while hot-swapping model versions; exits non-zero
# if any swap pauses the request path for more than 1 ms.
"./${BUILD_DIR}/bench/bench_micro" --serve \
  --serve-json="${BUILD_DIR}/BENCH_serve.json"
python3 - "${BUILD_DIR}/BENCH_serve.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
q = doc["quantized"]
# The int8 twin must have served the paired leg (a p50 of 0 would mean the
# quantized snapshot never answered); the speedup itself is hardware- and
# load-dependent, so it is recorded, not gated.
assert q["requests_per_leg"] > 0 and q["int8_ms"]["p50"] > 0, q
EOF

echo "== Memoized-inference bench (BENCH_cache.json) =="
# Paired uncached-vs-cached selection sweep (bit-identity asserted in the
# binary), cold-vs-warm serve soak, serial-vs-parallel gate replay; exits
# non-zero on divergence or a warm selection speedup below 1.5x.
"./${BUILD_DIR}/bench/bench_micro" --cache \
  --cache-json="${BUILD_DIR}/BENCH_cache.json"
python3 -m json.tool "${BUILD_DIR}/BENCH_cache.json" > /dev/null

echo "== Overload/pacing bench (BENCH_pacing.json) =="
# Open-loop arrival phases at 1x/2x/5x/10x the saturated model-path capacity;
# the binary exits non-zero if anything is rejected or the 10x p99 blows past
# 2x the 1x baseline. The JSON gate is re-checked here so a stale file from
# an earlier run can never green-wash a failure.
"./${BUILD_DIR}/bench/bench_micro" --overload \
  --pacing-json="${BUILD_DIR}/BENCH_pacing.json"
python3 - "${BUILD_DIR}/BENCH_pacing.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["gate"]["pass"] is True, doc["gate"]
assert all(p["rejected"] == 0 for p in doc["phases"]), doc["phases"]
assert any(p["multiplier"] == 10 and p["shed"] > 0 for p in doc["phases"]), \
    "10x phase did not shed anything"
EOF

echo "== Multi-shard serving soak smoke (loam_sim_cli serve --shards=4) =="
rm -rf "${BUILD_DIR}/serve_state_sharded"
"./${BUILD_DIR}/tools/loam_sim_cli" serve 1 48 \
  "${BUILD_DIR}/serve_state_sharded" --paced --shards=4
for k in 0 1 2 3; do
  test -s "${BUILD_DIR}/serve_state_sharded/feedback.jnl.s${k}"
done

echo "== Flight-recorder smoke (--record --dump-on-alert + obs_report) =="
# Paced 4-shard soak with the recorder sampling at 25ms and a 32x burst
# resubmission at the end: the burst drives the shed ratio well past 0.5
# (~0.75 observed), so the serve.shed_ratio SLO rule must fire and leave an
# alert dump on disk (alongside the deviance-rollback and shutdown bundles).
# Every bundle must pass the obs_report schema validator and render.
rm -rf "${BUILD_DIR}/flight_state" "${BUILD_DIR}/flight_dumps"
mkdir -p "${BUILD_DIR}/flight_dumps"
"./${BUILD_DIR}/tools/loam_sim_cli" serve 1 32 "${BUILD_DIR}/flight_state" \
  --paced --shards=4 --record --record-interval=25 --dump-on-alert \
  --dump-out="${BUILD_DIR}/flight_dumps" --burst=32
ls "${BUILD_DIR}/flight_dumps"/*alert*.json > /dev/null
for dump in "${BUILD_DIR}/flight_dumps"/*.json; do
  python3 tools/obs_report.py --validate "${dump}"
done
dump=$(ls "${BUILD_DIR}/flight_dumps"/*.json | head -n 1)
python3 tools/obs_report.py "${dump}" --series loam.serve > /dev/null

echo "== Shard scale-out bench (BENCH_serve_scaling.json) =="
# Closed-loop sweep over 1/2/4/8 shards with continuous hot-swap plus a
# burst phase; the binary exits non-zero on any rejection, a per-shard
# applied-swap pause over 1 ms, or (with >= 4 hardware threads) a 4-shard
# speedup below 2.5x. The JSON gate is re-checked here so a stale file from
# an earlier run can never green-wash a failure.
"./${BUILD_DIR}/bench/bench_micro" --serve-scaling \
  --serve-scaling-json="${BUILD_DIR}/BENCH_serve_scaling.json"
python3 - "${BUILD_DIR}/BENCH_serve_scaling.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["gate"]["pass"] is True, doc["gate"]
assert doc["gate"]["rejected"] == 0, doc["gate"]
assert doc["gate"]["swap_pause_max_us"] < 1000.0, doc["gate"]
sweeps = {s["num_shards"]: s for s in doc["sweeps"]}
assert set(sweeps) == {1, 2, 4, 8}, sorted(sweeps)
if doc["hardware_concurrency"] >= 4:
    assert sweeps[4]["model_rps"] >= 2.5 * sweeps[1]["model_rps"], doc["gate"]
# Every sweep's burst must shed on at least one shard instead of rejecting.
for s in sweeps.values():
    assert s["rejected"] == 0, s
    assert any(r > 0 for r in s["burst_shed_rate"]), s
EOF

echo "== Workload-drift smoke (loam_sim_cli drift --drift-script) =="
# A scripted schema migration plus a flash crowd replayed against the modular
# lifelong learner under the flight recorder; the shutdown bundle must carry
# the "drift" scenario state table and loam.drift.* metric history.
rm -rf "${BUILD_DIR}/drift_state" "${BUILD_DIR}/drift_dumps"
mkdir -p "${BUILD_DIR}/drift_dumps"
cat > "${BUILD_DIR}/drift_script.json" <<'EOF'
{"events": [
  {"kind": "schema_migration", "day": 2, "project": "main", "table": 0,
   "add_columns": 2, "drop_columns": 1, "row_growth": 4.0},
  {"kind": "flash_crowd", "day": 3, "project": "main", "multiplier": 4.0,
   "duration_days": 2}
]}
EOF
"./${BUILD_DIR}/tools/loam_sim_cli" drift 1 5 "${BUILD_DIR}/drift_state" \
  --drift-script="${BUILD_DIR}/drift_script.json" \
  --record --record-interval=25 --dump-on-alert \
  --dump-out="${BUILD_DIR}/drift_dumps"
test -s "${BUILD_DIR}/drift_state/main/feedback.jnl"
for dump in "${BUILD_DIR}/drift_dumps"/*.json; do
  python3 tools/obs_report.py --validate "${dump}"
done
dump=$(ls "${BUILD_DIR}/drift_dumps"/*.json | head -n 1)
python3 tools/obs_report.py "${dump}" --series loam.drift \
  | grep -q "loam.drift.migrations"
# Unknown-key rejection: a typo'd script field must fail loudly, matching
# the unknown-flag policy.
cat > "${BUILD_DIR}/drift_script_bad.json" <<'EOF'
{"events": [
  {"kind": "flash_crowd", "day": 1, "project": "main", "multipler": 2.0}
]}
EOF
rc=0
"./${BUILD_DIR}/tools/loam_sim_cli" drift 1 2 "${BUILD_DIR}/drift_state" \
  --drift-script="${BUILD_DIR}/drift_script_bad.json" \
  > /dev/null 2>&1 || rc=$?
if [[ "${rc}" == 0 ]]; then
  echo "loam_sim_cli accepted a drift script with an unknown key" >&2
  exit 1
fi

echo "== Drift recovery bench (BENCH_drift.json) =="
# Two localized-drift scenarios x (modular | monolithic); the binary exits
# non-zero unless modular time-to-recover is strictly better on both and the
# control project is never rolled back. The JSON gate is re-checked here so a
# stale file from an earlier run can never green-wash a failure.
"./${BUILD_DIR}/bench/bench_micro" --drift \
  --drift-json="${BUILD_DIR}/BENCH_drift.json"
python3 - "${BUILD_DIR}/BENCH_drift.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["gate"]["pass"] is True, doc["gate"]
assert doc["gate"]["modular_faster_everywhere"] is True, doc["gate"]
assert doc["gate"]["control_clean"] is True, doc["gate"]
names = {s["name"] for s in doc["scenarios"]}
assert names == {"schema_migration", "template_rotation"}, names
for s in doc["scenarios"]:
    assert s["modular"]["ttr_days"] < s["monolithic"]["ttr_days"], s["name"]
    assert s["modular"]["control_rollbacks"] == 0, s["name"]
EOF

echo "== ThreadSanitizer build + tests =="
cmake -B "${TSAN_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLOAM_SANITIZE=thread
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${TSAN_BUILD_DIR}" --output-on-failure -j "${JOBS}" -LE slow

echo "== ASan+UBSan build + tests =="
cmake -B "${ASAN_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLOAM_SANITIZE=address+undefined
cmake --build "${ASAN_BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${ASAN_BUILD_DIR}" --output-on-failure -j "${JOBS}" -LE slow

echo "== UBSan alignment pass over the SIMD kernels, per arm =="
# The kernel and quantization suites under ASan+UBSan with the dispatch
# pinned to each arm in turn: unaligned vector loads/stores, masked-tail
# overruns, and int8 panel padding bugs all trip the sanitizer here. Arms
# the host cannot run are skipped by the dispatch fallback.
for arm in portable avx2 avx512; do
  LOAM_SIMD="${arm}" ctest --test-dir "${ASAN_BUILD_DIR}" \
    --output-on-failure -j "${JOBS}" -R "Simd|MatKernel|Quant"
done

echo "== check.sh: all configurations green =="
