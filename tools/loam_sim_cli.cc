// loam-sim — command-line driver for the simulated warehouse + LOAM.
//
// Subcommands:
//   inspect   <archetype-index>             show a generated project's shape
//   history   <archetype-index> <days> <out.tsv>
//                                           simulate production, export cost log
//   train     <archetype-index> <days> [ckpt-path]
//                                           train LOAM, print gate report,
//                                           optionally checkpoint the model
//   steer     <archetype-index> <n-queries> show steered vs default plans
//   serve     <archetype-index> <n-requests> [state-dir]
//                                           run the online optimizer service:
//                                           bootstrap from history, serve a
//                                           request stream with execution
//                                           feedback, print latency + version
//                                           stats (state-dir holds the model
//                                           registry and feedback journal);
//                                           --paced enables BBR-style batch
//                                           pacing and prints the controller
//                                           snapshot + shed count;
//                                           --shards=N runs the shard-per-core
//                                           scale-out (N shared-nothing
//                                           shards, 0 = one per hardware
//                                           thread) and prints a per-shard
//                                           stats table
//   drift     <archetype-index> <days> [state-dir] --drift-script=<file>
//                                           run a declarative workload-drift
//                                           timeline (JSON; see docs/DRIFT.md)
//                                           against the lifelong modular
//                                           learner: the archetype serves as
//                                           project "main", the script's
//                                           events fire on their scheduled
//                                           days, and a per-day cost-ratio +
//                                           retrain table is printed;
//                                           --monolithic swaps in the pooled
//                                           single-model baseline; --record /
//                                           --dump-on-alert / --dump-out work
//                                           as in serve (bundles include the
//                                           "drift" scenario state provider).
//                                           Malformed scripts — including any
//                                           unknown key — are rejected with a
//                                           non-zero exit, matching the
//                                           unknown-flag policy.
//
// Archetype indices 0-4 are the paper's evaluation projects; 5+ draw from the
// sampled population.
//
// Global flags (any position):
//   --metrics-out=<path>  enable metrics; write the registry JSON on exit
//   --trace-out=<path>    enable tracing; write Chrome trace_event JSON on
//                         exit (load in chrome://tracing or ui.perfetto.dev)
//
// Unknown `--flags` are rejected with usage and a non-zero exit.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/gate.h"
#include "core/loam.h"
#include "drift/scenario.h"
#include "obs/obs.h"
#include "serve/service.h"
#include "util/table_printer.h"
#include "warehouse/repository_io.h"

using namespace loam;

namespace {

warehouse::ProjectArchetype pick_archetype(int index) {
  if (index < 5) {
    return warehouse::evaluation_archetypes()[static_cast<std::size_t>(index)];
  }
  const auto pool = warehouse::sampled_archetypes(index + 1, 4040);
  return pool[static_cast<std::size_t>(index)];
}

int cmd_inspect(int index) {
  warehouse::WorkloadGenerator gen(17);
  const warehouse::Project project = gen.make_project(pick_archetype(index));
  long long rows = 0, columns = 0;
  int temps = 0, with_stats = 0;
  for (int t = 0; t < project.catalog.table_count(); ++t) {
    const warehouse::Table& table = project.catalog.table(t);
    rows += table.row_count;
    columns += static_cast<long long>(table.columns.size());
    temps += table.is_temp;
    with_stats += project.catalog.stats(t).available;
  }
  std::printf("project %s\n", project.name.c_str());
  TablePrinter t({"property", "value"});
  t.add_row({"tables", TablePrinter::fmt_int(project.catalog.table_count())});
  t.add_row({"columns", TablePrinter::fmt_int(columns)});
  t.add_row({"total rows", TablePrinter::fmt_int(rows)});
  t.add_row({"temp tables", TablePrinter::fmt_int(temps)});
  t.add_row({"tables with statistics", TablePrinter::fmt_int(with_stats)});
  t.add_row({"query templates",
             TablePrinter::fmt_int(static_cast<long long>(project.templates.size()))});
  t.print();
  // Show one template as SQL.
  Rng rng(3);
  const warehouse::Query q = gen.instantiate(project, project.templates[0], 0, rng);
  std::printf("\nexample recurring query (%s):\n%s\n", q.template_id.c_str(),
              q.to_sql(project.catalog).c_str());
  return 0;
}

int cmd_history(int index, int days, const char* out_path) {
  core::RuntimeConfig rc;
  rc.seed = 99;
  core::ProjectRuntime runtime(pick_archetype(index), rc);
  runtime.simulate_history(days, 200);
  warehouse::write_cost_log_file(warehouse::to_cost_log(runtime.repository()),
                                 out_path);
  std::printf("simulated %d days (%zu queries) -> %s\n", days,
              runtime.repository().size(), out_path);
  return 0;
}

int cmd_train(int index, int days, const char* ckpt) {
  core::RuntimeConfig rc;
  rc.seed = 99;
  core::ProjectRuntime runtime(pick_archetype(index), rc);
  std::printf("simulating %d days of history...\n", days);
  runtime.simulate_history(days, 200);

  const core::FilterDecision filter =
      core::apply_filter(core::summarize_workload(runtime, 0, days - 1));
  std::printf("filter: n_query=%.0f/day inc=%.2f stable=%.2f -> %s\n",
              filter.n_query, filter.inc_ratio, filter.stable_ratio,
              filter.pass ? "PASS" : "FAIL (training challenges likely)");

  core::LoamConfig cfg;
  cfg.train_first_day = 0;
  cfg.train_last_day = days - 1;
  cfg.max_train_queries = 2500;
  core::LoamDeployment loam(&runtime, cfg);
  loam.train();
  std::printf("trained on %zu default plans (+%zu candidates) in %.1fs, model "
              "%.1f KB\n",
              loam.data().default_plans.size(), loam.data().candidate_plans.size(),
              loam.train_seconds(), loam.model().model_bytes() / 1024.0);

  core::DeploymentGateConfig gate_cfg;
  gate_cfg.sample_queries = 16;
  const core::DeploymentGateReport report =
      core::evaluate_deployment(runtime, loam, gate_cfg);
  std::printf("%s\n", report.to_string().c_str());

  if (ckpt != nullptr) {
    dynamic_cast<core::AdaptiveCostPredictor&>(loam.model()).save(ckpt);
    std::printf("checkpoint written to %s\n", ckpt);
  }
  return report.approved ? 0 : 2;
}

int cmd_steer(int index, int n_queries) {
  core::RuntimeConfig rc;
  rc.seed = 99;
  core::ProjectRuntime runtime(pick_archetype(index), rc);
  runtime.simulate_history(8, 150);
  core::LoamConfig cfg;
  cfg.train_first_day = 0;
  cfg.train_last_day = 7;
  cfg.max_train_queries = 1200;
  cfg.predictor.epochs = 10;
  core::LoamDeployment loam(&runtime, cfg);
  loam.train();

  warehouse::FlightingEnv flighting(runtime.config().cluster,
                                    runtime.config().executor, 555);
  for (const warehouse::Query& q : runtime.make_queries(8, 9, n_queries)) {
    const core::LoamDeployment::Choice choice = loam.optimize(q);
    const double def = flighting.replay_mean(
        choice.generation.plans[static_cast<std::size_t>(
            choice.generation.default_index)],
        5);
    const double steered = flighting.replay_mean(
        choice.generation.plans[static_cast<std::size_t>(choice.chosen)], 5);
    std::printf("%-16s %zu candidates | default %.0f | steered %.0f (%+.1f%%) "
                "[%s]\n",
                q.template_id.c_str(), choice.generation.plans.size(), def,
                steered, 100.0 * (steered - def) / def,
                choice.generation.knobs[static_cast<std::size_t>(choice.chosen)]
                    .to_string().c_str());
  }
  return 0;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

const char* pacing_state_name(serve::PacingController::State s) {
  switch (s) {
    case serve::PacingController::State::kStartup: return "STARTUP";
    case serve::PacingController::State::kDrain: return "DRAIN";
    case serve::PacingController::State::kSteady: return "STEADY";
    case serve::PacingController::State::kProbe: return "PROBE";
  }
  return "?";
}

// Flight-recorder options for `serve` (--record and friends).
struct RecordOptions {
  bool record = false;
  int interval_ms = 50;
  bool dump_on_alert = false;
  std::string dump_out;  // empty = the serve state dir
  int burst = 0;         // extra burst submissions of the whole pool
};

int cmd_serve(int index, int n_requests, const char* state_dir, bool paced,
              int shards, const RecordOptions& rec) {
  core::RuntimeConfig rc;
  rc.seed = 99;
  core::ProjectRuntime runtime(pick_archetype(index), rc);
  std::printf("simulating 5 days of history...\n");
  runtime.simulate_history(5, 150);

  const std::string dir = state_dir != nullptr ? state_dir : "loam_serve_state";
  serve::ServeConfig cfg;
  cfg.registry_root = dir + "/registry";
  cfg.journal_path = dir + "/feedback.jnl";
  cfg.predictor.epochs = 10;
  cfg.gate.sample_queries = 12;
  cfg.retrain_min_new_records = std::max(16, n_requests / 2);
  cfg.pacing.enabled = paced;
  cfg.num_shards = shards;

  // The flight recorder must OUTLIVE the service: the service registers its
  // "serve" state provider with it and removes it in its destructor.
  std::unique_ptr<obs::FlightRecorder> flight;
  if (rec.record) {
    obs::set_metrics_enabled(true);  // nothing to record otherwise
    const int resolved_shards =
        shards > 0 ? shards
                   : std::max(1, static_cast<int>(
                                     std::thread::hardware_concurrency()));
    obs::FlightRecorderConfig fc;
    fc.recorder.interval_ns =
        static_cast<std::int64_t>(std::max(1, rec.interval_ms)) * 1'000'000;
    fc.rules = obs::default_serve_rules(resolved_shards);
    fc.dump_on_alert = rec.dump_on_alert;
    fc.dump_dir = rec.dump_out.empty() ? dir : rec.dump_out;
    flight = std::make_unique<obs::FlightRecorder>(std::move(fc));
    cfg.flight_recorder = flight.get();
    flight->start();
  }

  // The request stream is pre-generated: make_queries consumes the runtime's
  // RNG, which the service's retrain gate also draws from.
  std::vector<warehouse::Query> requests = runtime.make_queries(5, 8, n_requests);

  serve::OptimizerService service(&runtime, cfg);
  service.start();
  std::printf("service up: journal %llu records, active version %d\n",
              static_cast<unsigned long long>(service.journal().records()),
              service.active_version());

  warehouse::FlightingEnv production(runtime.config().cluster,
                                     runtime.config().executor, 555);
  std::vector<double> latencies;
  std::map<int, int> served_by_version;
  double model_cost = 0.0, default_cost = 0.0;
  for (const warehouse::Query& q : requests) {
    const serve::ServeDecision d = service.optimize(q);
    latencies.push_back(d.total_seconds);
    ++served_by_version[d.model_version];
    const warehouse::ExecutionResult exec = production.replay_once(
        d.generation.plans[static_cast<std::size_t>(d.chosen)]);
    model_cost += exec.cpu_cost;
    default_cost += production.replay_once(
        d.generation.plans[static_cast<std::size_t>(d.generation.default_index)])
        .cpu_cost;
    service.record_feedback(d, exec);
  }

  // Optional overload burst: submit the whole pool --burst more times all at
  // once. With pacing on, everything past each shard's admission window is
  // shed to the native fallback — which is exactly what drives the
  // serve.shed_ratio SLO rule over its threshold. The explicit tick()
  // afterwards guarantees the rules see the burst interval even when the
  // background cadence would have sampled later.
  std::uint64_t burst_shed = 0;
  if (rec.burst > 0) {
    const std::uint64_t shed_before = service.stats().shed;
    std::vector<std::future<serve::ServeDecision>> futures;
    futures.reserve(static_cast<std::size_t>(rec.burst) * requests.size());
    for (int b = 0; b < rec.burst; ++b) {
      for (const warehouse::Query& q : requests) {
        std::future<serve::ServeDecision> fut;
        if (service.try_submit(q, &fut)) futures.push_back(std::move(fut));
      }
    }
    for (std::future<serve::ServeDecision>& fut : futures) fut.get();
    burst_shed = service.stats().shed - shed_before;
    if (flight) flight->tick();
    std::printf("burst: %dx pool (%zu requests), shed %llu to fallback\n",
                rec.burst, futures.size(),
                static_cast<unsigned long long>(burst_shed));
  }
  service.stop();

  const serve::OptimizerService::Stats stats = service.stats();
  TablePrinter t({"metric", "value"});
  t.add_row({"requests served", TablePrinter::fmt_int(stats.requests)});
  t.add_row({"inference batches", TablePrinter::fmt_int(stats.batches)});
  t.add_row({"p50 latency (ms)",
             fmt_double(1e3 * percentile(latencies, 0.50), 3)});
  t.add_row({"p99 latency (ms)",
             fmt_double(1e3 * percentile(latencies, 0.99), 3)});
  t.add_row({"hot swaps", TablePrinter::fmt_int(stats.swaps)});
  t.add_row({"rollbacks", TablePrinter::fmt_int(stats.rollbacks)});
  t.add_row({"retrains (approved/rejected)",
             TablePrinter::fmt_int(stats.retrain_approved) + "/" +
                 TablePrinter::fmt_int(stats.retrain_rejected)});
  t.add_row({"journal records",
             TablePrinter::fmt_int(service.journal().records())});
  t.add_row({"served cost vs default (%)",
             fmt_double(
                 default_cost > 0.0
                     ? 100.0 * (model_cost - default_cost) / default_cost
                     : 0.0,
                 2)});
  if (paced) {
    const serve::OptimizerService::PacingSnapshot snap =
        service.pacing_snapshot();
    t.add_row({"pacing state", pacing_state_name(snap.state)});
    t.add_row({"pacing est bw (plans/s)", fmt_double(snap.est_bw_per_sec, 0)});
    t.add_row({"pacing min delay (ms)",
               fmt_double(1e3 * snap.est_min_delay_seconds, 3)});
    t.add_row({"pacing bdp (requests)", fmt_double(snap.bdp_requests, 1)});
    t.add_row({"pacing batch target", TablePrinter::fmt_int(snap.batch_target)});
    t.add_row({"pacing cwnd", fmt_double(snap.cwnd, 1)});
    t.add_row({"shed to fallback", TablePrinter::fmt_int(stats.shed)});
  }
  t.print();
  if (service.num_shards() > 1) {
    std::printf("\nper-shard stats (%d shared-nothing shards):\n",
                service.num_shards());
    TablePrinter st({"shard", "requests", "batches", "shed", "fallback",
                     "swaps applied", "swap pause max (us)"});
    for (int k = 0; k < service.num_shards(); ++k) {
      const serve::ShardStats s = service.shard_stats(k);
      st.add_row({TablePrinter::fmt_int(k), TablePrinter::fmt_int(s.requests),
                  TablePrinter::fmt_int(s.batches),
                  TablePrinter::fmt_int(s.shed),
                  TablePrinter::fmt_int(s.fallback_decisions),
                  TablePrinter::fmt_int(s.swaps_applied),
                  fmt_double(1e-3 * static_cast<double>(s.swap_pause_max_ns),
                             2)});
    }
    st.print();
  }
  for (const auto& [version, count] : served_by_version) {
    if (version < 0) {
      std::printf("  served by native fallback: %d\n", count);
    } else {
      std::printf("  served by model v%d: %d\n", version, count);
    }
  }
  std::printf("state in %s (registry %zu versions)\n", dir.c_str(),
              service.registry().versions().size());

  if (flight) {
    // Final checkpoint bundle: whatever happened this run, the last flight
    // recording is on disk next to the alert-triggered ones.
    flight->trigger_dump("shutdown");
    flight->stop();
    std::printf(
        "\nflight recorder: %llu samples, %llu ring overwrites, %llu dumps "
        "(last: %s)\n",
        static_cast<unsigned long long>(flight->recorder().samples()),
        static_cast<unsigned long long>(flight->recorder().overwrites()),
        static_cast<unsigned long long>(flight->dumps_written()),
        flight->last_dump_path().c_str());
    const std::vector<obs::Alert> alert_log = flight->alert_log();
    if (!alert_log.empty()) {
      std::printf("alert timeline:\n");
      TablePrinter at({"rule", "metric", "fired (ms)", "cleared (ms)", "value",
                       "threshold"});
      for (const obs::Alert& a : alert_log) {
        at.add_row({a.rule, a.metric,
                    fmt_double(1e-6 * static_cast<double>(a.fired_t_ns), 1),
                    a.cleared_t_ns >= 0
                        ? fmt_double(1e-6 * static_cast<double>(a.cleared_t_ns), 1)
                        : std::string("active"),
                    fmt_double(a.value, 3), fmt_double(a.threshold, 3)});
      }
      at.print();
    } else {
      std::printf("alert timeline: empty (no SLO rule fired)\n");
    }
  }
  return 0;
}

int cmd_drift(int index, int days, const char* state_dir,
              const std::string& script_path, bool monolithic,
              const RecordOptions& rec) {
  if (script_path.empty()) {
    std::fprintf(stderr, "drift requires --drift-script=<file>\n");
    return 1;
  }
  // Loud-failure policy: a malformed script (unknown key, unknown kind, bad
  // value) must exit non-zero naming the offender, same as an unknown flag.
  drift::DriftScript script;
  try {
    script = drift::DriftScript::load(script_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "drift script rejected: %s\n", e.what());
    return 1;
  }

  const std::string dir = state_dir != nullptr ? state_dir : "loam_drift_state";

  // Same recorder lifetime rule as serve: the engine registers its "drift"
  // state provider and removes it in its destructor.
  std::unique_ptr<obs::FlightRecorder> flight;
  if (rec.record) {
    obs::set_metrics_enabled(true);
    obs::FlightRecorderConfig fc;
    fc.recorder.interval_ns =
        static_cast<std::int64_t>(std::max(1, rec.interval_ms)) * 1'000'000;
    fc.rules = obs::default_serve_rules(1);
    fc.dump_on_alert = rec.dump_on_alert;
    fc.dump_dir = rec.dump_out.empty() ? dir : rec.dump_out;
    flight = std::make_unique<obs::FlightRecorder>(std::move(fc));
    flight->start();
  }

  drift::LearnerConfig lc;
  lc.modular = !monolithic;
  lc.state_dir = dir;
  lc.predictor.epochs = 6;
  lc.predictor.hidden_dim = 16;
  lc.predictor.embed_dim = 8;
  lc.predictor.tcn_layers = 2;
  lc.predictor.batch_size = 16;
  lc.predictor.adversarial = false;
  lc.predictor.num_threads = 1;
  lc.explorer.top_k = 3;
  lc.explorer.card_scales = {0.5};
  lc.explorer.num_threads = 1;
  lc.gate.sample_queries = 6;
  lc.gate.replay_runs = 2;
  lc.gate.replay_threads = 1;
  lc.retrain_min_fresh = 12;
  lc.window_max_executed = 96;
  lc.incremental_epochs = 4;
  lc.min_train_examples = 24;
  drift::ModularLearner learner(lc);

  drift::ScenarioConfig sc;
  sc.queries_per_day = 12;
  sc.seed = 99;
  sc.recorder = flight.get();
  drift::ScenarioEngine engine(sc, &learner);

  // The chosen archetype serves as project "main" — the stable name drift
  // scripts target regardless of the archetype index.
  warehouse::ProjectArchetype arch = pick_archetype(index);
  arch.name = "main";
  engine.register_archetype(arch);
  engine.add_project("main");
  engine.set_script(std::move(script));

  std::printf("drift run: %s learner, %d days, %zu scripted events, project "
              "\"main\" (archetype %d)\n",
              monolithic ? "monolithic" : "modular", days,
              engine.script().events.size(), index);
  TablePrinter t({"day", "events", "queries", "cost vs default (%)",
                  "retrains", "approved"});
  for (int day = 0; day < days; ++day) {
    const drift::ScenarioEngine::DayStats stats = engine.step();
    int approved = 0;
    for (const drift::ModularLearner::RetrainReport& r : stats.retrains) {
      approved += r.approved;
    }
    double ratio = 1.0;
    const auto it = stats.regression.find("main");
    if (it != stats.regression.end()) ratio = it->second;
    t.add_row({TablePrinter::fmt_int(stats.day),
               TablePrinter::fmt_int(stats.events_applied),
               TablePrinter::fmt_int(stats.queries),
               fmt_double(100.0 * (ratio - 1.0), 2),
               TablePrinter::fmt_int(
                   static_cast<long long>(stats.retrains.size())),
               TablePrinter::fmt_int(approved)});
  }
  t.print();

  std::printf("\nmodule table (%s):\n", monolithic ? "pooled" : "per-project");
  TablePrinter mt({"module", "version", "epoch", "executed", "retrains",
                   "approved", "rejected", "rollbacks"});
  for (const std::string& key : learner.keys()) {
    const drift::ModuleStatus s = learner.status(key);
    mt.add_row({s.key, TablePrinter::fmt_int(s.version),
                TablePrinter::fmt_int(s.epoch),
                TablePrinter::fmt_int(
                    static_cast<long long>(s.executed_records)),
                TablePrinter::fmt_int(s.retrains),
                TablePrinter::fmt_int(s.approvals),
                TablePrinter::fmt_int(s.rejections),
                TablePrinter::fmt_int(s.rollbacks)});
  }
  mt.print();
  std::printf("applied %d of %zu scripted events; state in %s\n",
              engine.applied_events(), engine.script().events.size(),
              dir.c_str());

  if (flight) {
    flight->trigger_dump("shutdown");
    flight->stop();
    std::printf("flight recorder: %llu samples, %llu dumps (last: %s)\n",
                static_cast<unsigned long long>(flight->recorder().samples()),
                static_cast<unsigned long long>(flight->dumps_written()),
                flight->last_dump_path().c_str());
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: loam_sim_cli inspect <archetype>\n"
               "       loam_sim_cli history <archetype> <days> <out.tsv>\n"
               "       loam_sim_cli train   <archetype> <days> [ckpt]\n"
               "       loam_sim_cli steer   <archetype> <n-queries>\n"
               "       loam_sim_cli serve   <archetype> <n-requests> [state-dir]"
               " [--paced] [--shards=N]\n"
               "               [--record] [--record-interval=<ms>]"
               " [--dump-on-alert]\n"
               "               [--dump-out=<dir>] [--burst=N]\n"
               "               (--record samples metric history + SLO rules;\n"
               "                dumps land in --dump-out, default state-dir;\n"
               "                --burst=N resubmits the pool N times at once\n"
               "                to exercise shedding under the recorder)\n"
               "       loam_sim_cli drift   <archetype> <days> [state-dir]"
               " --drift-script=<file>\n"
               "               [--monolithic] [--record] [--dump-on-alert]"
               " [--dump-out=<dir>]\n"
               "               (replays a JSON drift timeline against the\n"
               "                modular lifelong learner; scripts target\n"
               "                project \"main\"; unknown script keys are\n"
               "                rejected — see docs/DRIFT.md)\n"
               "global flags: --metrics-out=<path> --trace-out=<path>\n");
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << content << '\n';
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out, trace_out, drift_script;
  bool paced = false;
  bool monolithic = false;
  int shards = 1;
  RecordOptions rec;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--paced") == 0) {
      paced = true;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--record") == 0) {
      rec.record = true;
    } else if (std::strncmp(argv[i], "--record-interval=", 18) == 0) {
      rec.interval_ms = std::atoi(argv[i] + 18);
    } else if (std::strcmp(argv[i], "--dump-on-alert") == 0) {
      rec.dump_on_alert = true;
    } else if (std::strncmp(argv[i], "--dump-out=", 11) == 0) {
      rec.dump_out = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--burst=", 8) == 0) {
      rec.burst = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--drift-script=", 15) == 0) {
      drift_script = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--monolithic") == 0) {
      monolithic = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage();
      return 1;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!metrics_out.empty()) obs::set_metrics_enabled(true);
  if (!trace_out.empty()) obs::set_tracing_enabled(true);

  const int nargs = static_cast<int>(args.size());
  int rc = 1;
  if (nargs < 3) {
    usage();
    return 1;
  }
  const std::string cmd = args[1];
  const int index = std::atoi(args[2]);
  if (cmd == "inspect") {
    rc = cmd_inspect(index);
  } else if (cmd == "history" && nargs >= 5) {
    rc = cmd_history(index, std::atoi(args[3]), args[4]);
  } else if (cmd == "train" && nargs >= 4) {
    rc = cmd_train(index, std::atoi(args[3]), nargs >= 5 ? args[4] : nullptr);
  } else if (cmd == "steer" && nargs >= 4) {
    rc = cmd_steer(index, std::atoi(args[3]));
  } else if (cmd == "serve" && nargs >= 4) {
    rc = cmd_serve(index, std::atoi(args[3]), nargs >= 5 ? args[4] : nullptr,
                   paced, shards, rec);
  } else if (cmd == "drift" && nargs >= 4) {
    rc = cmd_drift(index, std::atoi(args[3]), nargs >= 5 ? args[4] : nullptr,
                   drift_script, monolithic, rec);
  } else {
    usage();
    return 1;
  }

  if (!metrics_out.empty()) {
    if (!write_file(metrics_out, obs::Registry::instance().to_json())) return 1;
    std::printf("metrics written to %s (%zu series)\n", metrics_out.c_str(),
                obs::Registry::instance().size());
  }
  if (!trace_out.empty()) {
    obs::Tracer& tracer = obs::Tracer::instance();
    if (!write_file(trace_out, tracer.to_chrome_json())) return 1;
    std::printf("trace written to %s (%llu events, %llu dropped)\n",
                trace_out.c_str(),
                static_cast<unsigned long long>(tracer.recorded()),
                static_cast<unsigned long long>(tracer.dropped()));
  }
  return rc;
}
